// Multi-channel sharding (sim/multichannel.hpp, DESIGN.md §6j): spec
// parsing, SimConfig composition rules, in-engine co-simulation
// determinism (with and without migration), the shard_of partition hash,
// and the sharded parallel paths' thread-count invariance.

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "baselines/beb.hpp"
#include "core/params.hpp"
#include "core/uniform.hpp"
#include "sim/arrivals.hpp"
#include "sim/jammer.hpp"
#include "sim/multichannel.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::sim {
namespace {

ProtocolFactory uniform_factory() {
  core::Params params;
  params.lambda = 2;
  return core::make_uniform_factory(params);
}

std::optional<MultiChannelConfig> parse_quiet(const std::string& spec) {
  std::ostringstream diag;
  return parse_channels_spec(spec, diag);
}

// ---------------------------------------------------------------------------
// Spec parsing and config validation
// ---------------------------------------------------------------------------

TEST(ChannelsSpecParse, AcceptsCanonicalForms) {
  const auto plain = parse_quiet("8");
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(plain->channels, 8);
  EXPECT_FALSE(plain->migrate);

  const auto migrate = parse_quiet("4:migrate");
  ASSERT_TRUE(migrate.has_value());
  EXPECT_EQ(migrate->channels, 4);
  EXPECT_TRUE(migrate->migrate);
  EXPECT_EQ(migrate->migrate_after, 4);  // default threshold

  const auto tuned = parse_quiet("16:migrate:2");
  ASSERT_TRUE(tuned.has_value());
  EXPECT_EQ(tuned->channels, 16);
  EXPECT_TRUE(tuned->migrate);
  EXPECT_EQ(tuned->migrate_after, 2);
}

TEST(ChannelsSpecParse, RejectsMalformedSpecsWithOneLineError) {
  for (const char* bad : {"", "0", "-3", "257", "four", "4:teleport",
                          "4:migrate:0", "4:migrate:junk", "4:migrate:2:x"}) {
    std::ostringstream diag;
    EXPECT_FALSE(parse_channels_spec(bad, diag).has_value()) << bad;
    const std::string msg = diag.str();
    EXPECT_NE(msg.find("error: bad --channels spec"), std::string::npos)
        << bad << " -> " << msg;
    EXPECT_EQ(msg.find('\n'), msg.size() - 1) << bad << " -> " << msg;
  }
}

TEST(MultiChannelConfigTest, ValidateRejectsBadCompositions) {
  SimConfig config;
  config.multichannel.channels = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.multichannel.channels = 257;
  EXPECT_THROW(config.validate(), std::invalid_argument);

  config.multichannel.channels = 4;
  config.feedback = FeedbackModel::noisy(0.1);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.feedback = FeedbackModel::capture(0.5);
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.feedback = FeedbackModel::binary_ack();
  EXPECT_NO_THROW(config.validate());

  config.feedback = FeedbackModel{};
  config.collision_detection = false;
  EXPECT_THROW(config.validate(), std::invalid_argument);
  config.collision_detection = true;

  config.multichannel.migrate_after = 0;
  EXPECT_THROW(config.validate(), std::invalid_argument);
}

TEST(MultiChannelConfigTest, CtorRejectsJammerOnMultichannel) {
  SimConfig config;
  config.multichannel.channels = 2;
  EXPECT_THROW(Simulation(workload::gen_batch(8, 64), uniform_factory(),
                          config, make_blanket_jammer(0.1)),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// shard_of partition hash
// ---------------------------------------------------------------------------

TEST(ShardOf, DeterministicInRangeAndRoughlyUniform) {
  constexpr int kShards = 8;
  std::array<int, kShards> counts{};
  for (std::uint64_t key = 0; key < 4096; ++key) {
    const int shard = shard_of(123, key, kShards);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, kShards);
    EXPECT_EQ(shard, shard_of(123, key, kShards));  // pure function
    counts[static_cast<std::size_t>(shard)] += 1;
  }
  for (const int count : counts) {
    // 4096 keys over 8 shards: expect 512 each; allow a generous band.
    EXPECT_GT(count, 384);
    EXPECT_LT(count, 640);
  }
  // Seed-sensitivity: a different run seed produces a different partition.
  int moved = 0;
  for (std::uint64_t key = 0; key < 256; ++key) {
    moved += shard_of(123, key, kShards) != shard_of(456, key, kShards);
  }
  EXPECT_GT(moved, 0);
}

// ---------------------------------------------------------------------------
// In-engine co-simulation
// ---------------------------------------------------------------------------

std::uint64_t outcome_digest(const SimResult& r) {
  std::uint64_t h = 0;
  for (const JobResult& j : r.jobs) {
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(j.id);
    h = h * 1099511628211ULL ^ (j.success ? 1u : 0u);
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(j.success_slot);
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(j.transmissions);
  }
  h = h * 1099511628211ULL ^
      static_cast<std::uint64_t>(r.metrics.slots_simulated);
  h = h * 1099511628211ULL ^
      static_cast<std::uint64_t>(r.metrics.success_slots);
  return h;
}

TEST(MultiChannelCoSim, SameSeedSameResultAndChannelsHelp) {
  const auto instance = workload::gen_batch(96, 512);
  SimConfig config;
  config.seed = 17;
  config.multichannel.channels = 4;
  const SimResult a = run(instance, uniform_factory(), config);
  const SimResult b = run(instance, uniform_factory(), config);
  EXPECT_EQ(outcome_digest(a), outcome_digest(b));

  // k channels resolve k sub-channels per time slot: success slots can
  // exceed the single-channel count for the same contention level.
  SimConfig single = config;
  single.multichannel.channels = 1;
  const SimResult one = run(instance, uniform_factory(), single);
  EXPECT_GE(a.successes(), one.successes());
  EXPECT_NE(outcome_digest(a), outcome_digest(one));
}

TEST(MultiChannelCoSim, MigrationIsDeterministicAndChangesPlacement) {
  const auto instance = workload::gen_batch(128, 256);
  SimConfig config;
  config.seed = 23;
  config.multichannel.channels = 4;
  config.multichannel.migrate = true;
  config.multichannel.migrate_after = 2;
  const SimResult a = run(instance, baselines::make_beb_factory(), config);
  const SimResult b = run(instance, baselines::make_beb_factory(), config);
  EXPECT_EQ(outcome_digest(a), outcome_digest(b));

  SimConfig frozen = config;
  frozen.multichannel.migrate = false;
  const SimResult pinned =
      run(instance, baselines::make_beb_factory(), frozen);
  // A crowded batch must actually trigger rehashes somewhere.
  EXPECT_NE(outcome_digest(a), outcome_digest(pinned));
}

// ---------------------------------------------------------------------------
// Sharded parallel path
// ---------------------------------------------------------------------------

std::uint64_t sharded_digest(const ShardedResult& r) {
  std::uint64_t h = outcome_digest(r.total);
  h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(r.shards);
  for (const SimMetrics& m : r.per_shard) {
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(m.slots_simulated);
    h = h * 1099511628211ULL ^ static_cast<std::uint64_t>(m.success_slots);
    h = h * 1099511628211ULL ^
        static_cast<std::uint64_t>(m.contention.count());
  }
  return h;
}

TEST(RunSharded, ThreadCountNeverChangesTheResult) {
  const auto instance = workload::gen_batch(192, 512);
  SimConfig config;
  config.seed = 31;
  config.multichannel.channels = 4;

  const ShardedResult serial =
      run_sharded(instance, uniform_factory(), config, 1);
  ASSERT_EQ(serial.shards, 4);
  ASSERT_EQ(serial.per_shard.size(), 4u);
  ASSERT_EQ(serial.total.jobs.size(), instance.size());

  for (const int threads : {2, 8, 0 /* hardware default */}) {
    const ShardedResult parallel =
        run_sharded(instance, uniform_factory(), config, threads);
    EXPECT_EQ(sharded_digest(parallel), sharded_digest(serial))
        << "threads=" << threads;
  }

  // Fold semantics: total jobs are indexed by original position and the
  // metrics are the shard sum.
  std::int64_t shard_success_slots = 0;
  for (const SimMetrics& m : serial.per_shard) {
    shard_success_slots += m.success_slots;
  }
  EXPECT_EQ(serial.total.metrics.success_slots, shard_success_slots);
  for (std::size_t i = 0; i < serial.total.jobs.size(); ++i) {
    EXPECT_EQ(serial.total.jobs[i].id, static_cast<JobId>(i));
  }
}

TEST(RunSharded, ShardedJammerIsDeterministicPerShard) {
  const auto instance = workload::gen_batch(64, 512);
  SimConfig config;
  config.seed = 37;
  config.multichannel.channels = 2;
  const ShardJammerGen gen = [](util::Rng) {
    return make_blanket_jammer(0.25);
  };
  const ShardedResult a =
      run_sharded(instance, uniform_factory(), config, 1, gen);
  const ShardedResult b =
      run_sharded(instance, uniform_factory(), config, 2, gen);
  EXPECT_EQ(sharded_digest(a), sharded_digest(b));
  EXPECT_GT(a.total.metrics.jammed_slots, 0);
}

TEST(RunSharded, RejectsMigrationAndRecordSlots) {
  const auto instance = workload::gen_batch(8, 64);
  SimConfig config;
  config.multichannel.channels = 2;
  config.multichannel.migrate = true;
  EXPECT_THROW(run_sharded(instance, uniform_factory(), config),
               std::invalid_argument);
  config.multichannel.migrate = false;
  config.record_slots = true;
  EXPECT_THROW(run_sharded(instance, uniform_factory(), config),
               std::invalid_argument);
}

TEST(RunShardedStream, ThreadInvariantAndBoundedMemory) {
  SimConfig config;
  config.seed = 41;
  config.horizon = 1 << 14;
  config.multichannel.channels = 4;
  config.fast_forward = FastForward::kOn;
  const ShardArrivalGen make_process = [](int) {
    return std::make_unique<PoissonArrivals>(0.002, 256);
  };
  const ShardedStreamResult serial =
      run_sharded_stream(make_process, uniform_factory(), config, 1);
  ASSERT_EQ(serial.shards, 4);
  EXPECT_GT(serial.stream.jobs, 0);
  EXPECT_GT(serial.stream.delivered, 0);

  for (const int threads : {2, 8}) {
    const ShardedStreamResult parallel =
        run_sharded_stream(make_process, uniform_factory(), config, threads);
    EXPECT_EQ(parallel.stream.jobs, serial.stream.jobs)
        << "threads=" << threads;
    EXPECT_EQ(parallel.stream.delivered, serial.stream.delivered)
        << "threads=" << threads;
    EXPECT_EQ(parallel.stream.latency.mean(), serial.stream.latency.mean())
        << "threads=" << threads;
    EXPECT_EQ(parallel.metrics.slots_simulated,
              serial.metrics.slots_simulated)
        << "threads=" << threads;
    ASSERT_EQ(parallel.per_shard.size(), serial.per_shard.size());
    for (std::size_t s = 0; s < serial.per_shard.size(); ++s) {
      EXPECT_EQ(parallel.per_shard[s].slots_simulated,
                serial.per_shard[s].slots_simulated)
          << "threads=" << threads << " shard=" << s;
    }
  }
}

TEST(RunShardedStream, RejectsNullGeneratorAndRecordSlots) {
  SimConfig config;
  config.horizon = 1024;
  config.multichannel.channels = 2;
  EXPECT_THROW(run_sharded_stream(nullptr, uniform_factory(), config),
               std::invalid_argument);
  const ShardArrivalGen make_process = [](int) {
    return std::make_unique<PoissonArrivals>(0.01, 64);
  };
  config.record_slots = true;
  EXPECT_THROW(run_sharded_stream(make_process, uniform_factory(), config),
               std::invalid_argument);
}

}  // namespace
}  // namespace crmd::sim
