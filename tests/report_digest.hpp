#pragma once

// Order-sensitive digest over every deterministic field of an
// analysis::ReplicationReport. Shared by the golden-seed suite
// (test_determinism_golden.cpp) and the property suite
// (test_property_invariants.cpp): both pin bit-identity claims, so both
// must hash exactly the same traversal.
//
// Deliberately NOT part of the digest: SimMetrics::capture_wins and
// SimMetrics::collision_cost_slots. The digest's traversal order is itself
// a pinned artifact — appending fields would silently invalidate every
// recorded golden value — and both counters are redundant with the
// outcome/slot fields already hashed (a capture win is a success slot, a
// cost slot is a noise slot). Equality checks that care about them assert
// on the counters directly. SimMetrics::fast_forward_slots and
// SimMetrics::live_peak are excluded for the same reason: they describe
// HOW the engine covered the slots (skip vs step, transient live-set
// width), not WHAT the channel did. (Note the FF digest-identity tests
// compare kOn against kValidate, which share the batched contention
// accounting; kOff accumulates contention one slot at a time, so its
// RunningStats mean/m2 can differ from kOn in the last FP bit even though
// every integer field and job outcome is identical.)

#include <bit>
#include <cstdint>

#include "analysis/runner.hpp"
#include "util/stats.hpp"

namespace crmd::tests {

/// splitmix64-style combine: order-sensitive, avalanching.
inline std::uint64_t mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  return h;
}

inline std::uint64_t mix_double(std::uint64_t h, double v) noexcept {
  return mix(h, std::bit_cast<std::uint64_t>(v));
}

inline std::uint64_t mix_stats(std::uint64_t h, const util::RunningStats& s) {
  h = mix(h, s.count());
  h = mix_double(h, s.mean());
  h = mix_double(h, s.variance());
  h = mix_double(h, s.min());
  h = mix_double(h, s.max());
  return h;
}

inline std::uint64_t mix_counter(std::uint64_t h,
                                 const util::SuccessCounter& c) {
  h = mix(h, c.successes());
  return mix(h, c.trials());
}

/// Digest over every deterministic field of a ReplicationReport, in a
/// fixed traversal order. See the file comment before adding fields.
inline std::uint64_t report_digest(const analysis::ReplicationReport& r) {
  std::uint64_t h = 0x43524D44ULL;  // "CRMD"
  h = mix(h, static_cast<std::uint64_t>(r.replications));
  h = mix_stats(h, r.jobs_per_rep);

  const sim::SimMetrics& m = r.channel;
  for (const std::int64_t v :
       {m.slots_simulated, m.slots_skipped, m.silent_slots, m.success_slots,
        m.noise_slots, m.jammed_slots, m.data_successes,
        m.control_successes, m.start_successes, m.claim_successes,
        m.timekeeper_successes, m.faults_injected, m.feedback_corruptions,
        m.feedback_losses, m.clock_skew_events, m.crashes, m.restarts,
        m.dark_job_slots}) {
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  h = mix_stats(h, m.contention);

  h = mix_counter(h, r.outcomes.overall());
  h = mix_stats(h, r.outcomes.accesses());
  for (const auto& [window, bucket] : r.outcomes.by_window()) {
    h = mix(h, static_cast<std::uint64_t>(window));
    h = mix_counter(h, bucket.deadline_met);
    h = mix_stats(h, bucket.latency);
    h = mix_stats(h, bucket.accesses);
  }
  return h;
}

/// Digest over the §6k radio-energy accounting of a ReplicationReport, in
/// a fixed traversal order. Kept SEPARATE from report_digest() because that
/// traversal is itself a pinned artifact — appending the energy fields
/// there would have invalidated every recorded kGolden value for a change
/// that provably does not touch channel behavior. The energy counters get
/// their own golden family (kGoldenEnergy in test_determinism_golden.cpp)
/// with the same regeneration discipline.
inline std::uint64_t energy_digest(const analysis::ReplicationReport& r) {
  std::uint64_t h = 0x454E5247ULL;  // "ENRG"
  const sim::SimMetrics& m = r.channel;
  for (const std::int64_t v :
       {m.slots_awake, m.slots_listening, m.slots_transmitting,
        m.live_job_slots, m.dark_job_slots}) {
    h = mix(h, static_cast<std::uint64_t>(v));
  }
  h = mix_stats(h, r.outcomes.awake());
  for (const auto& [window, bucket] : r.outcomes.by_window()) {
    h = mix(h, static_cast<std::uint64_t>(window));
    h = mix_stats(h, bucket.awake);
  }
  return h;
}

}  // namespace crmd::tests
