// Tests for the offline trace analytics (src/obs/trace_analysis.cpp) and
// the declared taxonomy (src/obs/taxonomy.cpp): JSONL round-trip parsing,
// the per-stream summary, the coverage audit, first-divergence diffing —
// and the drift checks the layering depends on: the taxonomy's literal
// stage-name tables must match core's to_string(Stage) tables entry by
// entry, and parse_event_kind must invert to_string for every kind.

#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "obs/events.hpp"
#include "obs/taxonomy.hpp"
#include "obs/trace.hpp"
#include "obs/trace_analysis.hpp"

namespace crmd {
namespace {

obs::ParsedEvent parsed(obs::EventKind kind, Slot slot, std::uint64_t seq = 0,
                        JobId job = kNoJob, std::int64_t a = 0,
                        std::int64_t b = 0, double x = 0.0,
                        std::string label = {}) {
  obs::ParsedEvent ev;
  ev.seq = seq;
  ev.slot = slot;
  ev.kind = kind;
  ev.job = job;
  ev.a = a;
  ev.b = b;
  ev.x = x;
  ev.label = std::move(label);
  return ev;
}

// ---- parse_event_kind ------------------------------------------------------

TEST(ParseEventKind, InvertsToStringForEveryKind) {
  for (std::size_t i = 0; i < obs::kEventKindCount; ++i) {
    const auto kind = static_cast<obs::EventKind>(i);
    obs::EventKind back = obs::EventKind::kSlotResolved;
    ASSERT_TRUE(obs::parse_event_kind(obs::to_string(kind), back))
        << obs::to_string(kind);
    EXPECT_EQ(back, kind);
  }
}

TEST(ParseEventKind, RejectsUnknownNamesUntouched) {
  obs::EventKind out = obs::EventKind::kSchedule;
  EXPECT_FALSE(obs::parse_event_kind("not_a_kind", out));
  EXPECT_EQ(out, obs::EventKind::kSchedule);
}

// ---- JSONL parsing ---------------------------------------------------------

TEST(ParseJsonl, RoundTripsTheWriterIncludingAllFields) {
  obs::TraceEvent ev;
  ev.seq = 7;
  ev.slot = 42;
  ev.kind = obs::EventKind::kStage;
  ev.job = 3;
  ev.a = 1;
  ev.b = 2;
  ev.x = 0.5;
  ev.label = "probe";
  std::ostringstream line;
  obs::write_event_jsonl(line, ev);

  const auto back = obs::parse_event_jsonl(line.str());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 7u);
  EXPECT_EQ(back->slot, 42);
  EXPECT_EQ(back->kind, obs::EventKind::kStage);
  EXPECT_EQ(back->job, 3);
  EXPECT_EQ(back->a, 1);
  EXPECT_EQ(back->b, 2);
  EXPECT_DOUBLE_EQ(back->x, 0.5);
  EXPECT_EQ(back->label, "probe");
}

TEST(ParseJsonl, OmittedOptionalKeysTakeWriterDefaults) {
  // The writer omits job/x/label when they hold their defaults; parsing a
  // minimal line must restore exactly those defaults.
  const auto ev =
      obs::parse_event_jsonl(R"({"seq":9,"slot":5,"kind":"transmit","a":0,"b":1})");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->job, kNoJob);
  EXPECT_DOUBLE_EQ(ev->x, 0.0);
  EXPECT_TRUE(ev->label.empty());
}

TEST(ParseJsonl, AcceptsKeysInAnyOrder) {
  const auto ev = obs::parse_event_jsonl(
      R"({"kind":"slot-resolved","x":1.5,"slot":3,"b":2,"a":2,"seq":1})");
  ASSERT_TRUE(ev.has_value());
  EXPECT_EQ(ev->kind, obs::EventKind::kSlotResolved);
  EXPECT_EQ(ev->slot, 3);
  EXPECT_DOUBLE_EQ(ev->x, 1.5);
}

TEST(ParseJsonl, ReportsMalformedInput) {
  std::string error;
  EXPECT_FALSE(obs::parse_event_jsonl("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      obs::parse_event_jsonl(R"({"seq":1,"slot":0,"kind":"bogus"})", &error)
          .has_value());
  EXPECT_NE(error.find("bogus"), std::string::npos);
  // Missing the kind entirely.
  EXPECT_FALSE(
      obs::parse_event_jsonl(R"({"seq":1,"slot":0})", &error).has_value());
  // Unknown key.
  EXPECT_FALSE(
      obs::parse_event_jsonl(R"({"kind":"fault","zzz":1})", &error)
          .has_value());
}

TEST(LoadTraceJsonl, SkipsBlankLinesAndThrowsOnMalformedNamingTheLine) {
  std::istringstream ok(
      "{\"seq\":0,\"slot\":0,\"kind\":\"job-activate\",\"a\":0,\"b\":8}\n"
      "\n"
      "{\"seq\":1,\"slot\":1,\"kind\":\"transmit\",\"a\":0,\"b\":0}\n");
  const auto events = obs::load_trace_jsonl(ok);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[1].kind, obs::EventKind::kTransmit);

  std::istringstream bad(
      "{\"seq\":0,\"slot\":0,\"kind\":\"transmit\",\"a\":0,\"b\":0}\n"
      "garbage\n");
  try {
    (void)obs::load_trace_jsonl(bad);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(LoadTraceFile, ThrowsWhenTheFileCannotBeOpened) {
  EXPECT_THROW((void)obs::load_trace_file("/nonexistent/trace.jsonl"),
               std::runtime_error);
}

// ---- summary ---------------------------------------------------------------

TEST(Summarize, RollsUpKindsJobsAndOutcomes) {
  std::vector<obs::ParsedEvent> events = {
      parsed(obs::EventKind::kJobActivate, 4, 0, 1),
      parsed(obs::EventKind::kTransmit, 5, 1, 1),
      parsed(obs::EventKind::kSlotResolved, 5, 2, kNoJob, /*a=*/1, 1, 1.0),
      parsed(obs::EventKind::kSlotPerceived, 5, 3, kNoJob, /*a=*/1, 1),
      parsed(obs::EventKind::kJobRetire, 6, 4, 1, /*a=*/1),
      parsed(obs::EventKind::kJobRetire, 7, 5, 2, /*a=*/0),
      parsed(obs::EventKind::kFault, 8, 6, 2, /*a=*/0),
  };
  const obs::TraceSummary s = obs::summarize(events);
  EXPECT_EQ(s.events, 7u);
  EXPECT_EQ(s.first_slot, 4);
  EXPECT_EQ(s.last_slot, 8);
  EXPECT_EQ(s.jobs_seen, 2);
  EXPECT_EQ(s.activations, 1);
  EXPECT_EQ(s.success_retires, 1);
  EXPECT_EQ(s.expiries, 1);
  EXPECT_EQ(s.attempts, 1);
  EXPECT_EQ(s.resolved_slots, 1);
  EXPECT_EQ(s.true_success, 1);
  EXPECT_EQ(s.seen_success, 1);
  EXPECT_EQ(s.faults, 1);
  EXPECT_DOUBLE_EQ(s.contention_sum, 1.0);

  std::ostringstream out;
  obs::write_summary(out, s);
  EXPECT_NE(out.str().find("events          7"), std::string::npos);
  EXPECT_NE(out.str().find("job-retire"), std::string::npos);
}

// ---- coverage audit --------------------------------------------------------

std::vector<obs::ParsedEvent> channel_base_events() {
  std::vector<obs::ParsedEvent> events;
  std::uint64_t seq = 0;
  for (const obs::EventKind k : obs::channel_taxonomy()) {
    events.push_back(parsed(k, 0, seq++));
  }
  return events;
}

TEST(AuditCoverage, ChannelOnlyFullCoverage) {
  const auto events = channel_base_events();
  const obs::CoverageReport r = obs::audit_coverage(events, nullptr);
  EXPECT_EQ(r.taxonomy, nullptr);
  EXPECT_EQ(r.expected.size(), obs::channel_taxonomy().size());
  EXPECT_TRUE(r.missing_kinds.empty());
  EXPECT_TRUE(r.extra_kinds.empty());
  EXPECT_DOUBLE_EQ(r.kind_coverage(), 1.0);
  EXPECT_TRUE(r.complete());
}

TEST(AuditCoverage, MissingExpectedAndExtraObservedKinds) {
  auto events = channel_base_events();
  events.pop_back();  // drop one expected kind (kSuccessCredit)
  events.push_back(parsed(obs::EventKind::kSchedule, 0, 99));  // unexpected
  const obs::CoverageReport r = obs::audit_coverage(events, nullptr);
  ASSERT_EQ(r.missing_kinds.size(), 1u);
  EXPECT_EQ(r.missing_kinds[0], obs::EventKind::kSuccessCredit);
  ASSERT_EQ(r.extra_kinds.size(), 1u);
  EXPECT_EQ(r.extra_kinds[0], obs::EventKind::kSchedule);
  EXPECT_LT(r.kind_coverage(), 1.0);
  EXPECT_FALSE(r.complete());
}

TEST(AuditCoverage, RequiredKindsAreAuditedRegardlessOfFamily) {
  const auto events = channel_base_events();
  const obs::CoverageReport r =
      obs::audit_coverage(events, nullptr, {obs::EventKind::kFault});
  ASSERT_EQ(r.missing_kinds.size(), 1u);
  EXPECT_EQ(r.missing_kinds[0], obs::EventKind::kFault);

  auto with_fault = events;
  with_fault.push_back(parsed(obs::EventKind::kFault, 1, 50));
  const obs::CoverageReport r2 =
      obs::audit_coverage(with_fault, nullptr, {obs::EventKind::kFault});
  EXPECT_TRUE(r2.missing_kinds.empty());
}

TEST(AuditCoverage, StageMachineHitsMissesAndUndeclaredTransitions) {
  const obs::ProtocolTaxonomy* punctual =
      obs::taxonomy_for_protocol("punctual");
  ASSERT_NE(punctual, nullptr);

  std::vector<obs::ParsedEvent> events;
  // One declared transition (sync-listen -> probe) seen twice, one
  // undeclared edge (succeeded -> sync-listen: never legal).
  events.push_back(parsed(obs::EventKind::kStage, 0, 0, 1, 0, 2));
  events.push_back(parsed(obs::EventKind::kStage, 1, 1, 2, 0, 2));
  events.push_back(parsed(obs::EventKind::kStage, 2, 2, 1, 11, 0));
  const obs::CoverageReport r = obs::audit_coverage(events, punctual);

  ASSERT_EQ(r.transitions.size(), 2u);  // sorted by (from, to)
  EXPECT_EQ(r.transitions[0].from, 0);
  EXPECT_EQ(r.transitions[0].to, 2);
  EXPECT_EQ(r.transitions[0].count, 2);
  ASSERT_EQ(r.undeclared_transitions.size(), 1u);
  EXPECT_EQ(r.undeclared_transitions[0].from, 11);
  EXPECT_EQ(r.undeclared_transitions[0].to, 0);

  // Stages 0, 2, 11 observed; everything else unhit.
  EXPECT_EQ(r.hit_stages.size(), 3u);
  EXPECT_EQ(r.missing_stages.size(), punctual->stages.size() - 3);
  // The declared edge {0,2} is hit; all other declared edges are missing.
  EXPECT_EQ(r.missing_transitions.size(), punctual->transitions.size() - 1);
  EXPECT_FALSE(r.complete());

  std::ostringstream out;
  obs::write_coverage(out, r);
  EXPECT_NE(out.str().find("sync-listen -> probe  x2"), std::string::npos);
  EXPECT_NE(out.str().find("UNDECLARED transition: succeeded -> sync-listen"),
            std::string::npos);
  EXPECT_NE(out.str().find("unhit stage: slingshot"), std::string::npos);
}

// ---- first divergence ------------------------------------------------------

TEST(FirstDivergence, IdenticalStreamsDoNotDiverge) {
  const std::vector<obs::ParsedEvent> a = {
      parsed(obs::EventKind::kTransmit, 0, 0),
      parsed(obs::EventKind::kSlotResolved, 0, 1),
  };
  const obs::Divergence d = obs::first_divergence(a, a);
  EXPECT_FALSE(d.diverged);
}

TEST(FirstDivergence, ReportsFirstDifferingEvent) {
  const std::vector<obs::ParsedEvent> a = {
      parsed(obs::EventKind::kTransmit, 0, 0),
      parsed(obs::EventKind::kSlotResolved, 7, 1, kNoJob, 1),
      parsed(obs::EventKind::kTransmit, 9, 2),
  };
  std::vector<obs::ParsedEvent> b = a;
  b[1].a = 2;  // same slot, different outcome
  const obs::Divergence d = obs::first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  ASSERT_TRUE(d.a.has_value());
  ASSERT_TRUE(d.b.has_value());
  EXPECT_EQ(d.a->slot, 7);
  EXPECT_EQ(d.a->a, 1);
  EXPECT_EQ(d.b->a, 2);
}

TEST(FirstDivergence, PrefixRelationDivergesAtTheShorterEnd) {
  const std::vector<obs::ParsedEvent> a = {
      parsed(obs::EventKind::kTransmit, 0, 0),
      parsed(obs::EventKind::kTransmit, 3, 1),
  };
  const std::vector<obs::ParsedEvent> b(a.begin(), a.begin() + 1);
  const obs::Divergence d = obs::first_divergence(a, b);
  ASSERT_TRUE(d.diverged);
  EXPECT_EQ(d.index, 1u);
  ASSERT_TRUE(d.a.has_value());
  EXPECT_EQ(d.a->slot, 3);
  EXPECT_FALSE(d.b.has_value());
}

// ---- taxonomy --------------------------------------------------------------

TEST(Taxonomy, LongestPrefixMatchMapsRegistryNamesToFamilies) {
  ASSERT_NE(obs::taxonomy_for_protocol("punctual"), nullptr);
  EXPECT_STREQ(obs::taxonomy_for_protocol("punctual")->family, "punctual");
  EXPECT_STREQ(obs::taxonomy_for_protocol("punctual_gap")->family,
               "punctual");
  EXPECT_STREQ(obs::taxonomy_for_protocol("nocd_robust")->family, "nocd");
  EXPECT_STREQ(obs::taxonomy_for_protocol("aligned_gap")->family, "aligned");
  EXPECT_STREQ(obs::taxonomy_for_protocol("uniform")->family, "uniform");
  EXPECT_EQ(obs::taxonomy_for_protocol("beb"), nullptr);
  EXPECT_EQ(obs::taxonomy_for_protocol(""), nullptr);
}

// The obs taxonomy duplicates core's stage-name tables literally (obs sits
// below core; see taxonomy.hpp). These drift checks compare them entry by
// entry so an edit to one side without the other fails here, not in a
// user's coverage report.

TEST(TaxonomyDrift, PunctualStageTableMatchesCoreToString) {
  using Stage = core::punctual::PunctualProtocol::Stage;
  const obs::ProtocolTaxonomy* t = obs::taxonomy_for_protocol("punctual");
  ASSERT_NE(t, nullptr);
  const auto stage_count = static_cast<std::size_t>(Stage::kGaveUp) + 1;
  ASSERT_EQ(t->stages.size(), stage_count);
  for (std::size_t i = 0; i < stage_count; ++i) {
    EXPECT_STREQ(t->stages[i],
                 core::punctual::to_string(static_cast<Stage>(i)))
        << "stage index " << i;
  }
}

TEST(TaxonomyDrift, AlignedStageTableMatchesCoreToString) {
  using Stage = core::aligned::AlignedProtocol::Stage;
  const obs::ProtocolTaxonomy* t = obs::taxonomy_for_protocol("aligned");
  ASSERT_NE(t, nullptr);
  const auto stage_count = static_cast<std::size_t>(Stage::kGaveUp) + 1;
  ASSERT_EQ(t->stages.size(), stage_count);
  for (std::size_t i = 0; i < stage_count; ++i) {
    EXPECT_STREQ(t->stages[i],
                 core::aligned::to_string(static_cast<Stage>(i)))
        << "stage index " << i;
  }
}

TEST(TaxonomyDrift, ConditionalChannelKindsPartitionWithBaseTaxonomy) {
  // channel_taxonomy() is the always-expected base set; the conditional
  // set (faults, capture wins, cost slots) appears only when the matching
  // channel condition is configured and is audited via --require=. The
  // two must stay disjoint — a kind in both would make every plain-ternary
  // trace read as incomplete — and the conditional set must carry exactly
  // the condition-gated channel kinds.
  const auto& base = obs::channel_taxonomy();
  const auto& conditional = obs::conditional_channel_taxonomy();
  for (const obs::EventKind k : conditional) {
    for (const obs::EventKind b : base) {
      EXPECT_NE(k, b) << obs::to_string(k);
    }
  }
  ASSERT_EQ(conditional.size(), 6u);
  EXPECT_EQ(conditional[0], obs::EventKind::kFault);
  EXPECT_EQ(conditional[1], obs::EventKind::kCaptureWin);
  EXPECT_EQ(conditional[2], obs::EventKind::kCostSlot);
  EXPECT_EQ(conditional[3], obs::EventKind::kIdleSkip);
  EXPECT_EQ(conditional[4], obs::EventKind::kRadioSleep);
  EXPECT_EQ(conditional[5], obs::EventKind::kRadioWake);
  // All condition-gated kinds round-trip through the name parser, so
  // `crmd_trace coverage --require=capture-win,cost-slot,idle-skip` can
  // name them.
  for (const obs::EventKind k : conditional) {
    obs::EventKind back = obs::EventKind::kSlotResolved;
    ASSERT_TRUE(obs::parse_event_kind(obs::to_string(k), back));
    EXPECT_EQ(back, k);
  }
}

TEST(TaxonomyDrift, StageTransitionIndicesAreInRange) {
  for (const obs::ProtocolTaxonomy& t : obs::protocol_taxonomies()) {
    const auto n = static_cast<int>(t.stages.size());
    for (const obs::StageTransition& tr : t.transitions) {
      EXPECT_GE(tr.from, 0) << t.family;
      EXPECT_LT(tr.from, n) << t.family;
      EXPECT_GE(tr.to, 0) << t.family;
      EXPECT_LT(tr.to, n) << t.family;
    }
  }
}

}  // namespace
}  // namespace crmd
