// Fine-grained stage-machine tests for PUNCTUAL: synchronization timing,
// probe decisions, slingshot counting, the desperate-window threshold, and
// the leader's heartbeat contents.

#include <gtest/gtest.h>

#include <vector>

#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core::punctual {
namespace {

using Stage = PunctualProtocol::Stage;

Params base_params() {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 8;
  return p;
}

/// Steps the sim, recording job 0's stage before every slot.
std::vector<Stage> trace_stages(sim::Simulation& sim, int max_slots) {
  std::vector<Stage> stages;
  for (int i = 0; i < max_slots; ++i) {
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    if (proto != nullptr) {
      stages.push_back(proto->stage());
    }
    if (!sim.step()) {
      break;
    }
  }
  return stages;
}

TEST(PunctualStages, LoneArrivalListensThenAnnouncesThenProbes) {
  const Params p = base_params();
  sim::Simulation sim(workload::gen_batch(1, 1 << 12, 0),
                      make_punctual_factory(p), sim::SimConfig{});
  sim.step();  // activate
  const auto stages = trace_stages(sim, 30);
  // The protocol listens for kRoundLength+1 = 12 slots, announces for two,
  // then probes. The trace samples the stage before each step *after* the
  // activation slot, so it sees 11 of the 12 listen slots.
  int listen = 0;
  int announce = 0;
  for (const Stage s : stages) {
    listen += (s == Stage::kSyncListen) ? 1 : 0;
    announce += (s == Stage::kSyncAnnounce) ? 1 : 0;
  }
  EXPECT_EQ(listen, kRoundLength);
  EXPECT_EQ(announce, 2);
  // Eventually probing (and past it).
  EXPECT_NE(std::find(stages.begin(), stages.end(), Stage::kProbe),
            stages.end());
}

TEST(PunctualStages, SilentTimekeeperSendsProbeToSlingshot) {
  const Params p = base_params();
  sim::Simulation sim(workload::gen_batch(1, 1 << 12, 0),
                      make_punctual_factory(p), sim::SimConfig{});
  bool saw_slingshot = false;
  for (int i = 0; i < 60 && sim.step(); ++i) {
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    if (proto != nullptr && proto->stage() == Stage::kSlingshot) {
      saw_slingshot = true;
      break;
    }
  }
  EXPECT_TRUE(saw_slingshot);
}

TEST(PunctualStages, PullbackEndsInRecheckThenAnarchy) {
  Params p = base_params();
  p.pullback_window_frac = 0.05;  // short pullback
  sim::Simulation sim(workload::gen_batch(1, 1 << 12, 0),
                      make_punctual_factory(p), sim::SimConfig{});
  bool saw_recheck = false;
  bool saw_anarchist = false;
  std::int64_t elections = 0;
  while (sim.step()) {
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    if (proto == nullptr) {
      continue;
    }
    saw_recheck |= proto->stage() == Stage::kRecheck;
    saw_anarchist |= proto->stage() == Stage::kAnarchist;
    elections = std::max(elections, proto->elections_seen());
  }
  EXPECT_TRUE(saw_recheck);
  EXPECT_TRUE(saw_anarchist);
  EXPECT_EQ(elections, p.pullback_elections(1 << 12));
}

TEST(PunctualStages, DesperateThresholdBoundary) {
  Params p = base_params();
  p.punctual_min_window = 128;

  // Window just under the threshold: desperate from activation.
  {
    sim::Simulation sim(workload::gen_batch(1, 127, 0),
                        make_punctual_factory(p), sim::SimConfig{});
    sim.step();
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    ASSERT_NE(proto, nullptr);
    EXPECT_EQ(proto->stage(), Stage::kDesperate);
    EXPECT_TRUE(proto->was_anarchist());
    sim.finish();
  }
  // At the threshold: the full protocol runs.
  {
    sim::Simulation sim(workload::gen_batch(1, 128, 0),
                        make_punctual_factory(p), sim::SimConfig{});
    sim.step();
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    ASSERT_NE(proto, nullptr);
    EXPECT_EQ(proto->stage(), Stage::kSyncListen);
    sim.finish();
  }
}

TEST(PunctualStages, LeaderHeartbeatAdvancesClockAndCountsDownDeadline) {
  Params p = base_params();
  p.pullback_prob_log_exp = 0.0;
  p.pullback_prob_scale = 512.0;  // elect quickly
  sim::SimConfig config;
  config.seed = 5;
  sim::Simulation sim(workload::gen_batch(1, 1 << 12, 0),
                      make_punctual_factory(p), config);
  struct Heartbeat {
    Slot slot;
    std::int64_t time;
    std::int64_t deadline_in;
  };
  std::vector<Heartbeat> beats;
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission>) {
    if (rec.outcome == sim::SlotOutcome::kSuccess &&
        rec.success_kind == sim::MessageKind::kTimekeeper) {
      // Message content is not in the record; re-resolve via transmissions
      // is not needed — use a second observer pattern below instead.
      beats.push_back({rec.slot, 0, 0});
    }
  });
  // Re-wire with access to the message: use the transmissions span.
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission> tx) {
    if (rec.outcome == sim::SlotOutcome::kSuccess && tx.size() == 1 &&
        tx.front().message.kind == sim::MessageKind::kTimekeeper) {
      beats.push_back({rec.slot, tx.front().message.time,
                       tx.front().message.deadline_in});
    }
  });
  sim.finish();
  ASSERT_GE(beats.size(), 3u);
  for (std::size_t i = 1; i < beats.size(); ++i) {
    EXPECT_EQ(beats[i].slot - beats[i - 1].slot, kRoundLength);
    EXPECT_EQ(beats[i].time - beats[i - 1].time, 1)
        << "leader time advances one per round";
    EXPECT_EQ(beats[i - 1].deadline_in - beats[i].deadline_in, kRoundLength)
        << "relative deadline counts down";
  }
}

TEST(PunctualStages, StartMarkersKeepSyncSlotsBusy) {
  // With >= 2 synced jobs the sync slots always collide; with exactly one
  // job its start markers go through as successes. Either way no long
  // silent stretch exists once someone is synced — which is what keeps
  // late arrivals able to lock on.
  const Params p = base_params();
  sim::SimConfig config;
  config.seed = 6;
  config.record_slots = true;
  const auto result = sim::run(workload::gen_batch(1, 1 << 10, 0),
                               make_punctual_factory(p), config);
  EXPECT_GT(result.metrics.start_successes, 10);
  // After sync (slot ~14), no run of kRoundLength+1 consecutive silent
  // slots until the job retires.
  int silent_run = 0;
  int max_silent_run = 0;
  for (const auto& rec : result.slots) {
    if (rec.slot < 20) {
      continue;
    }
    if (rec.outcome == sim::SlotOutcome::kSilence) {
      ++silent_run;
      max_silent_run = std::max(max_silent_run, silent_run);
    } else {
      silent_run = 0;
    }
  }
  EXPECT_LE(max_silent_run, kRoundLength);
}

TEST(PunctualStages, LateArrivalAdoptsExistingFrameQuickly) {
  // Second job arrives mid-round; it must sync within ~2 rounds (the next
  // start pair) rather than announcing its own frame.
  const Params p = base_params();
  workload::Instance instance;
  instance.jobs = {{0, 1 << 12}, {40, 40 + (1 << 12)}};
  sim::SimConfig config;
  config.seed = 7;
  sim::Simulation sim(instance, make_punctual_factory(p), config);
  Slot synced_at = kNoSlot;
  while (sim.step() && synced_at == kNoSlot) {
    auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(1));
    if (proto != nullptr && proto->clock().synced()) {
      synced_at = sim.now();
    }
  }
  ASSERT_NE(synced_at, kNoSlot);
  EXPECT_LE(synced_at - 40, 2 * kRoundLength + 2);
  sim.finish();
}

}  // namespace
}  // namespace crmd::core::punctual
