// Integration tests for ALIGNED (§3): batches complete, nested classes
// coexist, truncation degrades gracefully, jamming is tolerated.
//
// Parameter choice: the paper's τ=64 makes the broadcast stage ≈ 2λτ²n̂
// slots, so tests use a smaller τ to keep windows (and runtimes) modest;
// the benches run the paper-faithful constants.

#include <gtest/gtest.h>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core::aligned {
namespace {

Params fast_params() {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 10;
  return p;
}

TEST(AlignedIntegration, LoneJobSucceeds) {
  Params p = fast_params();
  p.min_class = 11;
  const auto instance = workload::gen_batch(1, 1 << 11, 0);
  sim::SimConfig config;
  config.seed = 42;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(AlignedIntegration, BatchAllSucceed) {
  Params p = fast_params();
  p.min_class = 11;
  const auto instance = workload::gen_batch(16, 1 << 11, 0);
  sim::SimConfig config;
  config.seed = 7;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 16) << "all batch jobs should finish in a "
                                       "2048-slot window";
  for (const auto& job : result.jobs) {
    if (job.success) {
      EXPECT_GE(job.success_slot, job.release);
      EXPECT_LT(job.success_slot, job.deadline);
    }
  }
}

TEST(AlignedIntegration, SuccessiveWindowsBothComplete) {
  Params p = fast_params();
  p.min_class = 11;
  auto instance = workload::merge(workload::gen_batch(8, 1 << 11, 0),
                                  workload::gen_batch(8, 1 << 11, 1 << 11));
  sim::SimConfig config;
  config.seed = 11;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 16);
}

TEST(AlignedIntegration, NestedClassesBothComplete) {
  // Small-class jobs (window 2^10) nested inside a large-class window
  // (2^13). Pecking order gives the small class priority; the large class
  // still has room to finish afterwards.
  Params p = fast_params();
  p.min_class = 10;
  auto instance = workload::merge(workload::gen_batch(4, 1 << 10, 0),
                                  workload::gen_batch(6, 1 << 13, 0));
  sim::SimConfig config;
  config.seed = 3;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 10);
  // The small-window jobs must finish inside their own 1024-slot window.
  for (const auto& job : result.jobs) {
    if (job.window() == (1 << 10)) {
      EXPECT_TRUE(job.success);
      EXPECT_LT(job.success_slot, 1 << 10);
    }
  }
}

TEST(AlignedIntegration, SmallClassPreemptsLargeMidRun) {
  // A small-class window starting mid-way through the large window forces
  // the large class to suspend and resume (Figure 1's interleaving).
  Params p = fast_params();
  p.min_class = 10;
  auto instance = workload::merge(workload::gen_batch(6, 1 << 13, 0),
                                  workload::gen_batch(4, 1 << 10, 2 << 10));
  sim::SimConfig config;
  config.seed = 13;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 10);
}

TEST(AlignedIntegration, OverloadedWindowTruncatesGracefully) {
  // 2000 jobs can never finish inside a 2^11 window (the broadcast stage
  // alone would need >> 2^11 slots): jobs must give up at truncation, not
  // crash or overrun the window.
  Params p = fast_params();
  p.min_class = 11;
  const auto instance = workload::gen_batch(2000, 1 << 11, 0);
  sim::SimConfig config;
  config.seed = 17;
  const auto result = sim::run(instance, make_aligned_factory(p), config);
  EXPECT_LT(result.successes(), 2000);
  for (const auto& job : result.jobs) {
    if (job.success) {
      EXPECT_LT(job.success_slot, job.deadline);
    }
  }
}

TEST(AlignedIntegration, ReactiveJammingToleratedAtHalfRate) {
  Params p = fast_params();
  p.min_class = 12;
  const auto instance = workload::gen_batch(8, 1 << 12, 0);
  sim::SimConfig config;
  config.seed = 23;
  const auto result = sim::run(instance, make_aligned_factory(p), config,
                               sim::make_reactive_jammer(0.5));
  // p_jam = 1/2 is within the analyzed regime; with the doubled window
  // there is ample slack, so the whole batch should still complete.
  EXPECT_EQ(result.successes(), 8);
}

TEST(AlignedIntegration, MisalignedWindowRejected) {
  workload::Instance bad;
  bad.jobs = {{3, 3 + (1 << 11)}};  // power-of-2 size, misaligned start
  EXPECT_THROW(
      sim::run(bad, make_aligned_factory(fast_params()), sim::SimConfig{}),
      std::invalid_argument);

  workload::Instance notpow2;
  notpow2.jobs = {{0, 1000}};
  EXPECT_THROW(sim::run(notpow2, make_aligned_factory(fast_params()),
                        sim::SimConfig{}),
               std::invalid_argument);
}

TEST(AlignedIntegration, DeterministicAcrossRuns) {
  Params p = fast_params();
  p.min_class = 11;
  const auto instance = workload::gen_batch(12, 1 << 11, 0);
  sim::SimConfig config;
  config.seed = 99;
  const auto a = sim::run(instance, make_aligned_factory(p), config);
  const auto b = sim::run(instance, make_aligned_factory(p), config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].success, b.jobs[i].success);
    EXPECT_EQ(a.jobs[i].success_slot, b.jobs[i].success_slot);
  }
}

TEST(AlignedIntegration, RandomAlignedInstanceMostlySucceeds) {
  // A generator instance with plenty of slack: per-job success should be
  // high (the paper's guarantee, at practical constants).
  Params p = fast_params();
  p.min_class = 10;
  workload::AlignedConfig config;
  config.min_class = 10;
  config.max_class = 13;
  config.gamma = 1.0 / 64;
  config.fill = 0.5;  // half the feasibility ceiling: ample slack
  config.horizon = 1 << 15;
  util::Rng rng(31337);
  const auto instance = workload::gen_aligned(config, rng);
  ASSERT_FALSE(instance.empty());
  sim::SimConfig sc;
  sc.seed = 31337;
  const auto result = sim::run(instance, make_aligned_factory(p), sc);
  EXPECT_GE(result.success_rate(), 0.95)
      << result.successes() << "/" << result.jobs.size();
}

}  // namespace
}  // namespace crmd::core::aligned
