// Tests for the NOCD family (core/nocd, DESIGN.md §6g): the success-only
// inference contract (ternary <-> collision_as_silence bit-identity), the
// capped dry-epoch backoff, the robust variant's halving probes and
// deadline-aware ratio-capped floor, binary_ack per-collision backoff, and
// pinned slot-by-slot perceived-feedback sequences under a budgeted jammer
// composed with a crash/restart fault plan.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/runner.hpp"
#include "core/nocd/protocol.hpp"
#include "core/registry.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

core::Params nocd_params() {
  core::Params params;
  params.lambda = 2;
  return params;
}

sim::JobInfo job_info(Slot window, const sim::ChannelCaps& caps) {
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = window;
  info.caps = caps;
  return info;
}

// ---------------------------------------------------------------------------
// Success-only inference: ternary <-> collision_as_silence bit-identity
// ---------------------------------------------------------------------------

sim::SimResult run_saturated(bool robust, const sim::FeedbackModel& model) {
  sim::SimConfig config;
  config.seed = 20260808;
  config.feedback = model;
  return sim::run(workload::gen_batch(64, 128, 0),
                  core::nocd::make_nocd_factory(nocd_params(), robust),
                  config);
}

void expect_trajectory_identical(const sim::SimResult& a,
                                 const sim::SimResult& b) {
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].success, b.jobs[i].success) << "job " << i;
    EXPECT_EQ(a.jobs[i].success_slot, b.jobs[i].success_slot) << "job " << i;
    EXPECT_EQ(a.jobs[i].transmissions, b.jobs[i].transmissions)
        << "job " << i;
  }
  // Identical decisions => identical channel truth, not just outcomes.
  EXPECT_EQ(a.metrics.slots_simulated, b.metrics.slots_simulated);
  EXPECT_EQ(a.metrics.silent_slots, b.metrics.silent_slots);
  EXPECT_EQ(a.metrics.success_slots, b.metrics.success_slots);
  EXPECT_EQ(a.metrics.noise_slots, b.metrics.noise_slots);
}

TEST(NocdIdentity, TernaryMatchesCollisionAsSilenceBitIdentically) {
  // The §6g contract: decisions branch only on perceived successes, which
  // collision_as_silence delivers unchanged, so the entire trajectory —
  // every transmission of every job — matches the ternary run exactly.
  for (const bool robust : {false, true}) {
    expect_trajectory_identical(
        run_saturated(robust, sim::FeedbackModel::ternary()),
        run_saturated(robust, sim::FeedbackModel::collision_as_silence()));
  }
}

TEST(NocdIdentity, SaturatedBatchDeliversWithoutCollisionDetection) {
  // n = w/2 jobs, one window, no collision detection: the regime where the
  // blind anarchist fallback collapses (~100x, E19/E20). NOCD must keep a
  // constant fraction. The gauntlet pins ~0.5 at bench scale; 0.25 here
  // leaves slack for the smaller test instance.
  for (const bool robust : {false, true}) {
    const auto r =
        run_saturated(robust, sim::FeedbackModel::collision_as_silence());
    std::int64_t successes = 0;
    for (const auto& job : r.jobs) {
      successes += job.success ? 1 : 0;
    }
    EXPECT_GE(static_cast<double>(successes) /
                  static_cast<double>(r.jobs.size()),
              0.25)
        << "robust=" << robust;
  }
}

// ---------------------------------------------------------------------------
// Dry-epoch backoff: capped, never wraps; robust variant probes
// ---------------------------------------------------------------------------

/// Drives `proto` through `slots` silent slots (feeding back exactly what a
/// collision_as_silence channel with no other traffic would deliver) and
/// returns the lowest density exponent observed.
int min_exponent_over_silence(core::nocd::NocdProtocol& proto, int slots) {
  int min_k = proto.density_exponent();
  for (Slot t = 0; t < slots; ++t) {
    (void)proto.on_slot({t, t});
    proto.on_feedback({t, t}, {});  // silence
    min_k = std::min(min_k, proto.density_exponent());
    if (proto.done()) {
      break;  // cannot happen: a silent channel never grants a success
    }
  }
  return min_k;
}

TEST(NocdBackoff, PlainVariantNeverProbesUnderPersistentSilence) {
  // Dryness without collision detection is ambiguous, so the plain variant
  // only ever backs off (capped at k_max) — a jammer that silences the
  // channel must not be able to stampede it into a noise storm.
  core::nocd::NocdProtocol proto(nocd_params(), /*robust=*/false,
                                 util::Rng(7));
  proto.on_activate(
      job_info(1 << 16, sim::FeedbackModel::collision_as_silence().caps()));
  EXPECT_EQ(proto.density_exponent(), proto.max_exponent());
  EXPECT_EQ(proto.max_exponent(), 16);
  EXPECT_EQ(min_exponent_over_silence(proto, 2000), proto.max_exponent());
  EXPECT_EQ(proto.dry_sweeps(), 0);
  EXPECT_FALSE(proto.done());
}

TEST(NocdBackoff, RobustVariantProbesAfterDrySweepLimit) {
  // After nocd_dry_sweep_limit fully dry ladders the robust variant halves
  // its exponent to probe — unexplained silence must not starve it.
  const core::Params params = nocd_params();
  core::nocd::NocdProtocol proto(params, /*robust=*/true, util::Rng(7));
  proto.on_activate(
      job_info(1 << 16, sim::FeedbackModel::collision_as_silence().caps()));
  const int k_max = proto.max_exponent();
  // Two ladders of (k_max + 1) epochs each, plus the stagger slack.
  const int slots = static_cast<int>(params.nocd_epoch_len) *
                    (k_max + 1) * params.nocd_dry_sweep_limit * 2;
  EXPECT_LE(min_exponent_over_silence(proto, slots), k_max / 2);
}

TEST(NocdBackoff, ListenerSuccessesDrainTheEstimate) {
  // Perceived successes are the drain signal: enough of them halve the
  // believed contention and the exponent steps down.
  core::nocd::NocdProtocol proto(nocd_params(), /*robust=*/false,
                                 util::Rng(11));
  proto.on_activate(
      job_info(1 << 10, sim::FeedbackModel::collision_as_silence().caps()));
  const int k_start = proto.density_exponent();
  sim::SlotFeedback heard;
  heard.outcome = sim::SlotOutcome::kSuccess;
  heard.message = sim::make_data(99);
  for (Slot t = 0; t < 4096 && proto.density_exponent() == k_start; ++t) {
    const auto action = proto.on_slot({t, t});
    // Feed someone else's success only when we stayed silent, so the
    // "lone success while transmitting is ours" rule never fires.
    proto.on_feedback({t, t}, action.transmit ? sim::SlotFeedback{} : heard);
  }
  EXPECT_LT(proto.density_exponent(), k_start);
  EXPECT_FALSE(proto.done());
}

TEST(NocdBackoff, BinaryAckCollisionBacksOffImmediately) {
  // binary_ack: listeners hear nothing, but transmitters get the true
  // outcome — an own-collision is an explicit cue and backs off one step
  // without waiting out the epoch.
  core::nocd::NocdProtocol proto(nocd_params(), /*robust=*/false,
                                 util::Rng(3));
  proto.on_activate(job_info(4, sim::FeedbackModel::binary_ack().caps()));
  const int k_max = proto.max_exponent();
  // Walk slots until the protocol transmits (deterministic from the seed),
  // then report a collision.
  bool transmitted = false;
  for (Slot t = 0; t < 64; ++t) {
    const auto action = proto.on_slot({t, 0});
    if (action.transmit) {
      const int k_before = proto.density_exponent();
      sim::SlotFeedback fb;
      fb.outcome = sim::SlotOutcome::kNoise;
      proto.on_feedback({t, 0}, fb);
      EXPECT_EQ(proto.density_exponent(), std::min(k_before + 1, k_max));
      transmitted = true;
      break;
    }
    proto.on_feedback({t, 0}, {});
  }
  ASSERT_TRUE(transmitted);
  EXPECT_FALSE(proto.done());
}

TEST(NocdBackoff, OwnPerceivedSuccessCompletes) {
  core::nocd::NocdProtocol proto(nocd_params(), /*robust=*/true,
                                 util::Rng(3));
  proto.on_activate(
      job_info(4, sim::FeedbackModel::collision_as_silence().caps()));
  bool transmitted = false;
  for (Slot t = 0; t < 64; ++t) {
    const auto action = proto.on_slot({t, 0});
    sim::SlotFeedback fb;
    if (action.transmit) {
      fb.outcome = sim::SlotOutcome::kSuccess;
      fb.message = sim::make_data(0);
      transmitted = true;
    }
    proto.on_feedback({t, 0}, fb);
    if (transmitted) {
      break;
    }
  }
  ASSERT_TRUE(transmitted);
  EXPECT_TRUE(proto.done());
}

// ---------------------------------------------------------------------------
// Robust floor: endgame-only, ratio-capped, monotone aging
// ---------------------------------------------------------------------------

TEST(NocdFloor, EngagesOnlyInTheEndgame) {
  const core::Params params = nocd_params();
  core::nocd::NocdProtocol proto(params, /*robust=*/true, util::Rng(5));
  const Slot window = 256;
  proto.on_activate(
      job_info(window, sim::FeedbackModel::collision_as_silence().caps()));
  const int k = proto.density_exponent();  // k_max = 8 for w = 256
  ASSERT_EQ(k, 8);
  const double base = std::exp2(-k);
  const Slot sweep = params.nocd_epoch_len * Slot{k + 1};  // 72
  // Above one ladder of laxity the estimate rules alone.
  EXPECT_DOUBLE_EQ(proto.tx_prob(window), base);
  EXPECT_DOUBLE_EQ(proto.tx_prob(sweep + 1), base);
  // Inside the endgame the aging floor takes over, ratio-capped at 4x the
  // estimate-driven probability so a jammed-blind crowd cannot stampede.
  EXPECT_DOUBLE_EQ(proto.tx_prob(sweep), 4.0 * base);
  EXPECT_DOUBLE_EQ(proto.tx_prob(4), 4.0 * base);
  // Monotone aging: less laxity never lowers the probability.
  double prev = 0.0;
  for (Slot remaining = window; remaining >= 1; --remaining) {
    const double p = proto.tx_prob(remaining);
    EXPECT_GE(p, prev) << "remaining=" << remaining;
    prev = p;
  }
}

TEST(NocdFloor, PlainVariantHasNoFloor) {
  core::nocd::NocdProtocol proto(nocd_params(), /*robust=*/false,
                                 util::Rng(5));
  proto.on_activate(
      job_info(256, sim::FeedbackModel::collision_as_silence().caps()));
  const double base = std::exp2(-proto.density_exponent());
  EXPECT_DOUBLE_EQ(proto.tx_prob(256), base);
  EXPECT_DOUBLE_EQ(proto.tx_prob(1), base);
}

TEST(NocdFloor, FloorFormulaCappedAndAging) {
  const core::Params params = nocd_params();
  // λ / remaining, capped at max_tx_prob.
  EXPECT_DOUBLE_EQ(params.nocd_floor_tx_prob(1024), 2.0 / 1024.0);
  EXPECT_DOUBLE_EQ(params.nocd_floor_tx_prob(8), 0.25);
  EXPECT_DOUBLE_EQ(params.nocd_floor_tx_prob(4), params.max_tx_prob);
  EXPECT_DOUBLE_EQ(params.nocd_floor_tx_prob(1), params.max_tx_prob);
  EXPECT_DOUBLE_EQ(params.nocd_floor_tx_prob(0), params.max_tx_prob);
}

TEST(NocdFloor, ParamsValidationRejectsBadKnobs) {
  core::Params params = nocd_params();
  params.nocd_epoch_len = 0;
  EXPECT_THROW(core::nocd::make_nocd_factory(params, false),
               std::invalid_argument);
  params = nocd_params();
  params.nocd_dry_sweep_limit = 0;
  EXPECT_THROW(core::nocd::make_nocd_factory(params, true),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Pinned perceived feedback under jammer + fault composition
// ---------------------------------------------------------------------------

/// Transmits its data message at fixed offsets-since-release and logs every
/// perceived feedback slot as one char: '_' silence, 'x' noise, 'M' success
/// with payload, 's' success without payload (binary_ack own-ACK).
class PerceptionLogger final : public sim::Protocol {
 public:
  PerceptionLogger(std::vector<Slot> offsets, std::shared_ptr<std::string> log)
      : offsets_(std::move(offsets)), log_(std::move(log)) {}

  void on_activate(const sim::JobInfo& info) override { info_ = info; }

  sim::SlotAction on_slot(const sim::SlotView& view) override {
    sim::SlotAction action;
    for (const Slot o : offsets_) {
      if (o == view.since_release) {
        action.transmit = true;
        action.message = sim::make_data(info_.id);
        action.declared_prob = 1.0;
      }
    }
    return action;
  }

  void on_feedback(const sim::SlotView&, const sim::SlotFeedback& fb) override {
    switch (fb.outcome) {
      case sim::SlotOutcome::kSilence:
        log_->push_back('_');
        break;
      case sim::SlotOutcome::kNoise:
        log_->push_back('x');
        break;
      case sim::SlotOutcome::kSuccess:
        log_->push_back(fb.message.has_value() ? 'M' : 's');
        break;
    }
  }

  [[nodiscard]] bool done() const override { return false; }

 private:
  std::vector<Slot> offsets_;
  std::shared_ptr<std::string> log_;
  sim::JobInfo info_;
};

/// Three jobs in one window of 8: jobs 0 and 1 collide in slot 0, job 0
/// transmits alone in slots 2 and 5, job 2 only listens. A budgeted
/// reactive jammer (budget 1 per window) can erase exactly one of the two
/// would-be successes; the crash/restart fault plan composes on top.
/// Returns (transmitter log, listener log).
std::pair<std::string, std::string> run_adversarial_scenario(
    const sim::FeedbackModel& model, const sim::FaultPlan& faults) {
  auto tx_log = std::make_shared<std::string>();
  auto listen_log = std::make_shared<std::string>();
  workload::Instance instance;
  instance.jobs = {{0, 8}, {0, 8}, {0, 8}};
  const sim::ProtocolFactory factory = [&](const sim::JobInfo& info,
                                           util::Rng) {
    if (info.id == 0) {
      return std::unique_ptr<sim::Protocol>(std::make_unique<
          PerceptionLogger>(std::vector<Slot>{0, 2, 5}, tx_log));
    }
    if (info.id == 1) {
      return std::unique_ptr<sim::Protocol>(std::make_unique<
          PerceptionLogger>(std::vector<Slot>{0},
                            std::make_shared<std::string>()));
    }
    return std::unique_ptr<sim::Protocol>(
        std::make_unique<PerceptionLogger>(std::vector<Slot>{}, listen_log));
  };
  sim::SimConfig config;
  config.seed = 20260808;
  config.feedback = model;
  config.faults = faults;
  (void)sim::run(instance, factory, config,
                 sim::make_budgeted_jammer(sim::make_reactive_jammer(1.0),
                                           /*budget=*/1,
                                           /*window_length=*/8));
  return {*tx_log, *listen_log};
}

sim::FaultPlan crashy_plan() {
  sim::FaultPlan plan;
  plan.crash_rate = 0.3;
  plan.crash_permanent_frac = 0.0;
  plan.stall_min = 1;
  plan.stall_max = 2;
  plan.feedback_loss_rate = 0.3;
  return plan;
}

// The pinned strings are regression anchors for the exact composition
// order channel -> jammer -> feedback model -> faults (seed 20260808). A
// change here means perceived feedback under adversity changed for every
// protocol; if intentional, re-pin from the failure output and say why in
// the commit message.

TEST(AdversarialPerception, CollisionAsSilencePinned) {
  const auto [tx, listen] = run_adversarial_scenario(
      sim::FeedbackModel::collision_as_silence(), {});
  // Slot 0: two-way collision reads as silence. Slot 2: the reactive
  // jammer spends its single budget token erasing the first would-be
  // success, which therefore also reads as silence. Slot 5: budget
  // exhausted, the success goes through to everyone — and the engine
  // retires the now-successful transmitter, so its log ends at slot 5
  // while the listener hears the remaining silent slots.
  EXPECT_EQ(tx, "_____M");
  EXPECT_EQ(listen, "_____M__");
}

TEST(AdversarialPerception, CollisionAsSilenceCrashyPinned) {
  // Same channel truth; the crash/stall plan additionally swallows
  // feedback slots on the listener's side (a crashed/stalled job perceives
  // nothing), shortening its log — without fabricating any outcome that
  // collision_as_silence would not deliver.
  const auto [tx, listen] = run_adversarial_scenario(
      sim::FeedbackModel::collision_as_silence(), crashy_plan());
  EXPECT_EQ(tx, "_____M");
  EXPECT_EQ(listen, "____M");
}

TEST(AdversarialPerception, NoisyEpsPinned) {
  // eps = 0.2 flips slot outcomes for everyone from one shared stream:
  // the slot-0 collision reads as silence, slots 2-3 flip to noise, and
  // slot 6's silence flips to noise for the listener. The slot-5 success
  // still goes through (flips never fabricate or destroy payloads here —
  // this pins that the jammer erased slot 2, not the noise stream).
  const auto [tx, listen] =
      run_adversarial_scenario(sim::FeedbackModel::noisy(0.2), {});
  EXPECT_EQ(tx, "__xx_M");
  EXPECT_EQ(listen, "__xx_Mx_");
}

TEST(AdversarialPerception, NoisyEpsCrashyPinned) {
  const auto [tx, listen] =
      run_adversarial_scenario(sim::FeedbackModel::noisy(0.2), crashy_plan());
  EXPECT_EQ(tx, "__xx_M");
  EXPECT_EQ(listen, "__x_M");
}

// ---------------------------------------------------------------------------
// Registry integration
// ---------------------------------------------------------------------------

TEST(NocdRegistry, FactoryRunsUnderEveryModelItAdvertises) {
  core::Params params = nocd_params();
  for (const char* name : {"nocd", "nocd_robust"}) {
    const auto info = core::protocol_info(name);
    ASSERT_TRUE(info.has_value()) << name;
    const auto factory = core::make_protocol(name, params);
    ASSERT_TRUE(factory.has_value()) << name;
    for (const auto& model : {sim::FeedbackModel::ternary(),
                              sim::FeedbackModel::binary_ack(),
                              sim::FeedbackModel::collision_as_silence(),
                              sim::FeedbackModel::noisy(0.1)}) {
      ASSERT_TRUE(info->supports(model.caps())) << name << " " << model.spec();
      sim::SimConfig config;
      config.seed = 5;
      config.feedback = model;
      const auto r =
          sim::run(workload::gen_batch(8, 32, 0), *factory, config);
      EXPECT_EQ(r.jobs.size(), 8u) << name << " " << model.spec();
    }
  }
}

}  // namespace
}  // namespace crmd
