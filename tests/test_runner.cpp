// Tests for the analysis layer: outcome aggregation and the replication
// runner (determinism, jammer wiring, metric merging).

#include <gtest/gtest.h>

#include "analysis/outcomes.hpp"
#include "analysis/runner.hpp"
#include "baselines/aloha.hpp"
#include "workload/generators.hpp"

namespace crmd::analysis {
namespace {

TEST(OutcomeAggregator, BucketsByWindowSize) {
  OutcomeAggregator agg;
  sim::JobResult a;
  a.release = 0;
  a.deadline = 64;
  a.success = true;
  a.success_slot = 10;
  sim::JobResult b;
  b.release = 100;
  b.deadline = 164;
  b.success = false;
  sim::JobResult c;
  c.release = 0;
  c.deadline = 128;
  c.success = true;
  c.success_slot = 50;

  agg.add_job(a);
  agg.add_job(b);
  agg.add_job(c);

  EXPECT_EQ(agg.jobs(), 3u);
  EXPECT_EQ(agg.overall().successes(), 2u);
  ASSERT_EQ(agg.by_window().size(), 2u);
  const auto& w64 = agg.by_window().at(64);
  EXPECT_EQ(w64.deadline_met.trials(), 2u);
  EXPECT_EQ(w64.deadline_met.successes(), 1u);
  EXPECT_DOUBLE_EQ(w64.latency.mean(), 11.0);
  const auto& w128 = agg.by_window().at(128);
  EXPECT_EQ(w128.deadline_met.trials(), 1u);
  EXPECT_DOUBLE_EQ(w128.latency.mean(), 51.0);
}

TEST(Runner, DeterministicReports) {
  const InstanceGen gen = [](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 6;
    config.max_window = 1 << 8;
    config.gamma = 1.0 / 4;
    config.horizon = 1 << 10;
    return workload::gen_general(config, rng);
  };
  const auto factory = baselines::make_aloha_window_factory(4.0);
  const auto a = run_replications(gen, factory, 5, 99);
  const auto b = run_replications(gen, factory, 5, 99);
  EXPECT_EQ(a.outcomes.jobs(), b.outcomes.jobs());
  EXPECT_EQ(a.outcomes.overall().successes(),
            b.outcomes.overall().successes());
  EXPECT_EQ(a.channel.slots_simulated, b.channel.slots_simulated);
  EXPECT_EQ(a.replications, 5);
}

TEST(Runner, DifferentSeedsDifferentInstances) {
  const InstanceGen gen = [](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 6;
    config.max_window = 1 << 8;
    config.gamma = 1.0 / 4;
    config.horizon = 1 << 10;
    return workload::gen_general(config, rng);
  };
  const auto factory = baselines::make_aloha_window_factory(4.0);
  const auto a = run_replications(gen, factory, 3, 1);
  const auto b = run_replications(gen, factory, 3, 2);
  // Not a strict guarantee, but overwhelmingly likely to differ.
  EXPECT_TRUE(a.outcomes.jobs() != b.outcomes.jobs() ||
              a.channel.slots_simulated != b.channel.slots_simulated);
}

TEST(Runner, JammerGeneratorIsWired) {
  const InstanceGen gen = [](util::Rng&) {
    return workload::gen_batch(1, 64, 0);
  };
  const auto factory = baselines::make_aloha_factory(0.5);
  const JammerGen jam = [](util::Rng) {
    return sim::make_blanket_jammer(1.0);
  };
  const auto report = run_replications(gen, factory, 4, 7, jam);
  // Blanket jamming with p=1 kills every transmission.
  EXPECT_EQ(report.outcomes.overall().successes(), 0u);
  EXPECT_GT(report.channel.jammed_slots, 0);
}

TEST(Runner, MergeMetricsSums) {
  sim::SimMetrics a;
  a.slots_simulated = 10;
  a.data_successes = 3;
  a.contention.add(1.0);
  sim::SimMetrics b;
  b.slots_simulated = 5;
  b.data_successes = 2;
  b.contention.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.slots_simulated, 15);
  EXPECT_EQ(a.data_successes, 5);
  EXPECT_EQ(a.contention.count(), 2u);
  EXPECT_DOUBLE_EQ(a.contention.mean(), 2.0);
}

TEST(Runner, EmptyGeneratorHandled) {
  const InstanceGen gen = [](util::Rng&) { return workload::Instance{}; };
  const auto report =
      run_replications(gen, baselines::make_aloha_factory(0.1), 3, 5);
  EXPECT_EQ(report.outcomes.jobs(), 0u);
  EXPECT_EQ(report.replications, 3);
}

}  // namespace
}  // namespace crmd::analysis
