// Tests for obs::Timeline (src/obs/timeline.cpp): bucket merge/rescale
// algebra, the event-kind folding rules, the backoff-probability ladder,
// the numeric drift-check against sim::SlotOutcome (obs cannot name the
// enum — see timeline.cpp), the dropped-event accounting on the Tracer,
// and the headline determinism contract: the serialized timeline JSON is
// bit-identical for every --threads value and attaching a timeline never
// perturbs simulation results.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "analysis/runner.hpp"
#include "core/punctual/protocol.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"
#include "sim/channel.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

obs::TraceEvent make_event(obs::EventKind kind, Slot slot, JobId job = kNoJob,
                           std::int64_t a = 0, std::int64_t b = 0,
                           double x = 0.0, const char* label = nullptr) {
  obs::TraceEvent ev;
  ev.kind = kind;
  ev.slot = slot;
  ev.job = job;
  ev.a = a;
  ev.b = b;
  ev.x = x;
  ev.label = label;
  return ev;
}

// ---- TimelineBucket algebra ------------------------------------------------

TEST(TimelineBucket, MergeSumsEveryField) {
  obs::TimelineBucket a;
  a.resolved_slots = 1;
  a.live_job_slots = 2;
  a.attempts = 3;
  a.contention_sum = 0.5;
  a.true_silence = 4;
  a.true_success = 5;
  a.true_noise = 6;
  a.seen_silence = 7;
  a.seen_success = 8;
  a.seen_noise = 9;
  a.activations = 10;
  a.retires = 11;
  a.expiries = 12;
  a.faults = 13;
  a.capture_wins = 14;
  a.cost_slots = 15;
  a.prob_level[0] = 1;
  a.prob_level[15] = 2;

  obs::TimelineBucket b = a;
  b.contention_sum = 1.25;
  a.merge(b);

  EXPECT_EQ(a.resolved_slots, 2);
  EXPECT_EQ(a.live_job_slots, 4);
  EXPECT_EQ(a.attempts, 6);
  EXPECT_DOUBLE_EQ(a.contention_sum, 1.75);
  EXPECT_EQ(a.true_silence, 8);
  EXPECT_EQ(a.true_success, 10);
  EXPECT_EQ(a.true_noise, 12);
  EXPECT_EQ(a.seen_silence, 14);
  EXPECT_EQ(a.seen_success, 16);
  EXPECT_EQ(a.seen_noise, 18);
  EXPECT_EQ(a.activations, 20);
  EXPECT_EQ(a.retires, 22);
  EXPECT_EQ(a.expiries, 24);
  EXPECT_EQ(a.faults, 26);
  EXPECT_EQ(a.capture_wins, 28);
  EXPECT_EQ(a.cost_slots, 30);
  EXPECT_EQ(a.prob_level[0], 2);
  EXPECT_EQ(a.prob_level[15], 4);
}

TEST(TimelineBucket, EmptyDetectsAnyNonzeroField) {
  obs::TimelineBucket b;
  EXPECT_TRUE(b.empty());
  b.contention_sum = 0.001;
  EXPECT_FALSE(b.empty());
  b = obs::TimelineBucket{};
  b.prob_level[7] = 1;
  EXPECT_FALSE(b.empty());
  b = obs::TimelineBucket{};
  b.capture_wins = 1;
  EXPECT_FALSE(b.empty());
  b = obs::TimelineBucket{};
  b.cost_slots = 1;
  EXPECT_FALSE(b.empty());
}

// ---- Bucketing and rescale -------------------------------------------------

TEST(Timeline, RoundsBucketCountUpToPowerOfTwo) {
  EXPECT_EQ(obs::Timeline(5).bucket_count(), 8u);
  EXPECT_EQ(obs::Timeline(64).bucket_count(), 64u);
  EXPECT_EQ(obs::Timeline(1).bucket_count(), 2u);  // minimum
}

TEST(Timeline, StartsWithSingleSlotBuckets) {
  obs::Timeline tl(4);
  EXPECT_EQ(tl.bucket_width(), 1);
  for (Slot s = 0; s < 4; ++s) {
    tl.on_event(make_event(obs::EventKind::kSlotResolved, s));
  }
  EXPECT_EQ(tl.bucket_width(), 1);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(tl.bucket(i).resolved_slots, 1) << "bucket " << i;
  }
  EXPECT_EQ(tl.max_slot(), 3);
  EXPECT_EQ(tl.events_seen(), 4u);
}

TEST(Timeline, RescaleDoublesWidthAndFoldsAdjacentPairs) {
  obs::Timeline tl(4);
  for (Slot s = 0; s < 4; ++s) {
    tl.on_event(
        make_event(obs::EventKind::kSlotResolved, s, kNoJob, 0, 0, 0.25));
  }
  // Slot 4 does not fit in 4 one-slot buckets: widths double once.
  tl.on_event(make_event(obs::EventKind::kSlotResolved, 4));
  EXPECT_EQ(tl.bucket_width(), 2);
  EXPECT_EQ(tl.bucket(0).resolved_slots, 2);  // old slots 0+1
  EXPECT_DOUBLE_EQ(tl.bucket(0).contention_sum, 0.5);
  EXPECT_EQ(tl.bucket(1).resolved_slots, 2);  // old slots 2+3
  EXPECT_EQ(tl.bucket(2).resolved_slots, 1);  // the new event
  EXPECT_TRUE(tl.bucket(3).empty());
}

TEST(Timeline, DistantSlotTriggersRepeatedRescalesWithoutLosingCounts) {
  obs::Timeline tl(4);
  for (Slot s = 0; s < 4; ++s) {
    tl.on_event(make_event(obs::EventKind::kSlotResolved, s));
  }
  tl.on_event(make_event(obs::EventKind::kSlotResolved, 1000));
  // 1000 >> width_log2 must fit in 4 buckets: width 256, index 3.
  EXPECT_EQ(tl.bucket_width(), 256);
  std::int64_t total = 0;
  for (std::size_t i = 0; i < tl.bucket_count(); ++i) {
    total += tl.bucket(i).resolved_slots;
  }
  EXPECT_EQ(total, 5);
  EXPECT_EQ(tl.bucket(0).resolved_slots, 4);
  EXPECT_EQ(tl.bucket(3).resolved_slots, 1);
  EXPECT_EQ(tl.max_slot(), 1000);
}

// ---- Event-kind folding rules ----------------------------------------------

TEST(Timeline, ProbLevelLadderEdges) {
  obs::Timeline tl(2);
  const auto transmit = [&](double p) {
    tl.on_event(make_event(obs::EventKind::kTransmit, 0, 0, 0, 0, p));
  };
  transmit(1.0);    // depth 0 -> level 0
  transmit(0.75);   // depth < 1 -> level 0
  transmit(0.5);    // depth exactly 1 -> level 1
  transmit(0.25);   // level 2
  transmit(1e-9);   // depth ~29.9 -> clamped to 15
  transmit(0.0);    // p <= 0 -> deepest level
  transmit(-1.0);   // defensive: still deepest
  const obs::TimelineBucket& b = tl.bucket(0);
  EXPECT_EQ(b.attempts, 7);
  EXPECT_EQ(b.prob_level[0], 2);
  EXPECT_EQ(b.prob_level[1], 1);
  EXPECT_EQ(b.prob_level[2], 1);
  EXPECT_EQ(b.prob_level[15], 3);
}

TEST(Timeline, OutcomePayloadsMatchSimSlotOutcomeValues) {
  // obs sits below sim, so timeline.cpp hardcodes the outcome payload
  // values. This is the drift check the comment there points at.
  EXPECT_EQ(static_cast<int>(sim::SlotOutcome::kSilence), 0);
  EXPECT_EQ(static_cast<int>(sim::SlotOutcome::kSuccess), 1);
  EXPECT_EQ(static_cast<int>(sim::SlotOutcome::kNoise), 2);

  obs::Timeline tl(2);
  const auto resolved = [&](sim::SlotOutcome o) {
    tl.on_event(make_event(obs::EventKind::kSlotResolved, 0, kNoJob,
                           static_cast<std::int64_t>(o)));
  };
  const auto perceived = [&](sim::SlotOutcome o, std::int64_t live) {
    tl.on_event(make_event(obs::EventKind::kSlotPerceived, 0, kNoJob,
                           static_cast<std::int64_t>(o), live));
  };
  resolved(sim::SlotOutcome::kSilence);
  resolved(sim::SlotOutcome::kSuccess);
  resolved(sim::SlotOutcome::kSuccess);
  resolved(sim::SlotOutcome::kNoise);
  perceived(sim::SlotOutcome::kSilence, 3);
  perceived(sim::SlotOutcome::kNoise, 5);

  const obs::TimelineBucket& b = tl.bucket(0);
  EXPECT_EQ(b.resolved_slots, 4);
  EXPECT_EQ(b.true_silence, 1);
  EXPECT_EQ(b.true_success, 2);
  EXPECT_EQ(b.true_noise, 1);
  EXPECT_EQ(b.seen_silence, 1);
  EXPECT_EQ(b.seen_noise, 1);
  EXPECT_EQ(b.seen_success, 0);
  EXPECT_EQ(b.live_job_slots, 8);
}

TEST(Timeline, LifecycleAndFaultKindsFoldAndProtocolKindsAreCountedOnly) {
  obs::Timeline tl(2);
  tl.on_event(make_event(obs::EventKind::kJobActivate, 0, 1));
  tl.on_event(make_event(obs::EventKind::kJobRetire, 0, 1, /*a=*/1));
  tl.on_event(make_event(obs::EventKind::kJobRetire, 0, 2, /*a=*/0));
  tl.on_event(make_event(obs::EventKind::kFault, 0, 1));
  tl.on_event(make_event(obs::EventKind::kCaptureWin, 0, 1, /*a=*/2, 0,
                         /*x=*/0.5, "capture"));
  tl.on_event(make_event(obs::EventKind::kCostSlot, 0, kNoJob, /*a=*/1,
                         /*b=*/3, 0.0, "cost"));
  tl.on_event(make_event(obs::EventKind::kCostSlot, 0, kNoJob, /*a=*/0,
                         /*b=*/0, 0.0, "cost"));
  tl.on_event(make_event(obs::EventKind::kStage, 0, 1, 0, 2, 0.0, "probe"));
  const obs::TimelineBucket& b = tl.bucket(0);
  EXPECT_EQ(b.activations, 1);
  EXPECT_EQ(b.retires, 1);
  EXPECT_EQ(b.expiries, 1);
  EXPECT_EQ(b.faults, 1);
  EXPECT_EQ(b.capture_wins, 1);
  EXPECT_EQ(b.cost_slots, 2);
  // kStage does not aggregate into the bucket but is still counted.
  EXPECT_EQ(tl.events_seen(), 8u);
}

TEST(Timeline, WriteJsonCarriesCaptureAndCostCounters) {
  obs::Timeline tl(2);
  tl.on_event(make_event(obs::EventKind::kCaptureWin, 0, 1, 2, 0, 0.5));
  tl.on_event(make_event(obs::EventKind::kCostSlot, 0, kNoJob, 1, 0, 0.0));
  std::ostringstream out;
  tl.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"capture_wins\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"cost_slots\": 1"), std::string::npos);
}

TEST(Timeline, WriteJsonEmitsSchemaMetaAndOnlyUsedBuckets) {
  obs::Timeline tl(8);
  tl.on_event(make_event(obs::EventKind::kSlotResolved, 0));
  tl.on_event(make_event(obs::EventKind::kSlotResolved, 2));
  std::ostringstream out;
  tl.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"schema\": \"crmd-timeline-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"bucket_width\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"bucket_count\": 8"), std::string::npos);
  EXPECT_NE(json.find("\"max_slot\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"events\": 2"), std::string::npos);
  // Buckets run 0..max_slot's bucket: exactly three slot_lo entries.
  std::size_t entries = 0;
  for (std::size_t pos = json.find("\"slot_lo\""); pos != std::string::npos;
       pos = json.find("\"slot_lo\"", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 3u);
}

TEST(Timeline, EmptyTimelineWritesValidSkeleton) {
  obs::Timeline tl(4);
  std::ostringstream out;
  tl.write_json(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"events\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\": [\n]"), std::string::npos);
}

// ---- Tracer drop accounting (satellite: overflow visibility) ---------------

TEST(TracerDrops, SinklessTracerCountsEveryDiscardedEvent) {
  obs::Tracer tracer(/*ring_capacity=*/1 << 4);
  constexpr int kEvents = 100;  // forces several zero-sink drains
  for (int i = 0; i < kEvents; ++i) {
    tracer.emit(obs::EventKind::kTransmit, i);
  }
  tracer.close();
  EXPECT_EQ(tracer.emitted(), static_cast<std::uint64_t>(kEvents));
  EXPECT_EQ(tracer.dropped(), static_cast<std::uint64_t>(kEvents));
}

TEST(TracerDrops, SinkedTracerDropsNothingAndCountsEmitsAfterClose) {
  obs::Tracer tracer(/*ring_capacity=*/1 << 4);
  auto sink = std::make_shared<obs::CollectSink>();
  tracer.add_sink(sink);
  for (int i = 0; i < 100; ++i) {
    tracer.emit(obs::EventKind::kTransmit, i);
  }
  tracer.close();
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(sink->events().size(), 100u);

  tracer.emit(obs::EventKind::kTransmit, 0);  // after close: discarded
  EXPECT_EQ(tracer.dropped(), 1u);
  EXPECT_EQ(sink->events().size(), 100u);
}

// ---- Determinism contract --------------------------------------------------

workload::Instance timeline_instance(util::Rng& rng) {
  workload::GeneralConfig config;
  config.min_window = 1 << 9;
  config.max_window = 1 << 11;
  config.gamma = 1.0 / 32;
  config.horizon = 1 << 13;
  return workload::gen_general(config, rng);
}

struct TimelineRun {
  std::string json;
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;
  std::int64_t slots = 0;
};

TimelineRun run_with_timeline(int threads) {
  core::Params params;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  obs::Tracer tracer;
  auto timeline = std::make_shared<obs::Timeline>(64);
  tracer.add_sink(timeline);

  analysis::RunOptions options;
  options.threads = threads;
  options.tracer = &tracer;
  const analysis::ReplicationReport report = analysis::run_replications(
      timeline_instance, factory, /*reps=*/6, /*base_seed=*/42, options);
  tracer.close();

  TimelineRun out;
  std::ostringstream json;
  timeline->write_json(json);
  out.json = json.str();
  out.successes = report.outcomes.overall().successes();
  out.trials = report.outcomes.overall().trials();
  out.slots = report.channel.slots_simulated;
  EXPECT_GT(timeline->events_seen(), 0u);
  return out;
}

TEST(TimelineDeterminism, JsonIsBitIdenticalForEveryThreadCount) {
  const TimelineRun serial = run_with_timeline(1);
  for (const int threads : {2, 8}) {
    const TimelineRun parallel = run_with_timeline(threads);
    EXPECT_EQ(serial.json, parallel.json) << "threads=" << threads;
    EXPECT_EQ(serial.successes, parallel.successes);
    EXPECT_EQ(serial.trials, parallel.trials);
    EXPECT_EQ(serial.slots, parallel.slots);
  }
}

TEST(TimelineDeterminism, AttachingTimelineDoesNotPerturbResults) {
  core::Params params;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);

  analysis::RunOptions bare;
  const analysis::ReplicationReport base = analysis::run_replications(
      timeline_instance, factory, /*reps=*/4, /*base_seed=*/7, bare);

  const auto traced_once = [&] {
    obs::Tracer tracer;
    auto timeline = std::make_shared<obs::Timeline>(32);
    tracer.add_sink(timeline);
    analysis::RunOptions options;
    options.tracer = &tracer;
    const analysis::ReplicationReport traced = analysis::run_replications(
        timeline_instance, factory, /*reps=*/4, /*base_seed=*/7, options);
    tracer.close();
    return traced;
  };
  const analysis::ReplicationReport traced = traced_once();

  EXPECT_EQ(base.outcomes.overall().successes(),
            traced.outcomes.overall().successes());
  EXPECT_EQ(base.outcomes.overall().trials(),
            traced.outcomes.overall().trials());
  EXPECT_EQ(base.channel.slots_simulated, traced.channel.slots_simulated);
  EXPECT_EQ(base.channel.data_successes, traced.channel.data_successes);
  EXPECT_DOUBLE_EQ(base.channel.contention.mean(),
                   traced.channel.contention.mean());
}

}  // namespace
}  // namespace crmd
