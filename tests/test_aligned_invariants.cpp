// Executable invariants for ALIGNED, checked while stepping live
// simulations (parameterized across random instances/seeds):
//
//  * Lemma 7: every live job agrees, in every slot, on which class is
//    active.
//  * Same-window jobs share the same estimate once estimation completes,
//    and the estimate is a power of two times τ (or 0).
//  * Successful jobs always deliver inside their windows.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/math.hpp"
#include "workload/generators.hpp"

namespace crmd::core::aligned {
namespace {

class AlignedInvariants : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AlignedInvariants, AgreementAndEstimateConsistency) {
  const std::uint64_t seed = GetParam();
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 9;

  workload::AlignedConfig config;
  config.min_class = 9;
  config.max_class = 12;
  config.gamma = 1.0 / 16;  // dense enough for real contention
  config.horizon = 1 << 14;
  util::Rng rng(seed);
  workload::Instance instance = workload::gen_aligned(config, rng);
  if (instance.empty()) {
    GTEST_SKIP() << "generator produced an empty instance for this seed";
  }

  sim::SimConfig sc;
  sc.seed = seed;
  sim::Simulation sim(instance, make_aligned_factory(p), sc);

  std::int64_t agreement_checks = 0;
  while (sim.step()) {
    const auto live = sim.live_jobs();
    if (live.size() < 2) {
      continue;
    }
    // Lemma 7: all live jobs agree on the active class. A job of level L
    // answers over classes [min_class, L] only, so the precise invariant
    // is: whenever a job of level L1 reports an active class a != -1,
    // every job of level L2 >= L1 must report exactly a (their shared
    // range [min_class, L1] contains a, and shared class states agree).
    std::vector<std::pair<int, int>> level_active;  // (own level, active)
    for (const JobId id : live) {
      auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(id));
      ASSERT_NE(proto, nullptr);
      level_active.emplace_back(proto->level(), proto->active_class());
      // Estimates are 0 or τ times a power of two.
      const std::int64_t est = proto->own_estimate();
      if (est > 0) {
        EXPECT_EQ(est % p.tau, 0);
        EXPECT_TRUE(util::is_pow2(est / p.tau));
      }
    }
    for (const auto& [l1, a1] : level_active) {
      if (a1 < 0) {
        continue;
      }
      for (const auto& [l2, a2] : level_active) {
        if (l2 >= l1) {
          EXPECT_EQ(a2, a1) << "Lemma 7 violated at slot " << sim.now()
                            << " (levels " << l1 << " vs " << l2 << ")";
          ++agreement_checks;
        }
      }
    }
  }
  EXPECT_GT(agreement_checks, 0);

  const sim::SimResult result = sim.finish();
  for (const auto& job : result.jobs) {
    if (job.success) {
      EXPECT_GE(job.success_slot, job.release);
      EXPECT_LT(job.success_slot, job.deadline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlignedInvariants,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

// Same-window jobs must agree exactly on the estimate once both know it.
TEST(AlignedInvariantsFocused, SameWindowJobsShareEstimate) {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 11;

  const auto instance = workload::gen_batch(10, 1 << 11, 0);
  sim::SimConfig sc;
  sc.seed = 5;
  sim::Simulation sim(instance, make_aligned_factory(p), sc);

  bool compared = false;
  while (sim.step()) {
    const auto live = sim.live_jobs();
    std::int64_t common_est = -1;
    for (const JobId id : live) {
      auto* proto = dynamic_cast<AlignedProtocol*>(sim.protocol(id));
      ASSERT_NE(proto, nullptr);
      const std::int64_t est = proto->own_estimate();
      if (est < 0) {
        continue;
      }
      if (common_est < 0) {
        common_est = est;
      } else {
        EXPECT_EQ(est, common_est) << "slot " << sim.now();
        compared = true;
      }
    }
  }
  EXPECT_TRUE(compared);
}

// No ALIGNED job may ever declare a transmission probability above 1/2
// (Lemma 2's hypothesis). Checked via slot contention: with k live jobs the
// declared sum can never exceed k/2.
TEST(AlignedInvariantsFocused, DeclaredProbabilitiesRespectHalfCap) {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 11;

  const auto instance = workload::gen_batch(12, 1 << 11, 0);
  sim::SimConfig sc;
  sc.seed = 9;
  sim::Simulation sim(instance, make_aligned_factory(p), sc);
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission>) {
    EXPECT_LE(rec.contention,
              0.5 * static_cast<double>(rec.live_jobs) + 1e-9)
        << "slot " << rec.slot;
  });
  sim.finish();
}

}  // namespace
}  // namespace crmd::core::aligned
