// Integration tests for PUNCTUAL (§4): synchronization, leader election,
// following, deposition/handoff, the anarchist path, and end-to-end success
// on general instances.
//
// Leader election at the paper's claim rate 1/(w log³w) only fires at
// asymptotic window sizes; tests that exercise election raise
// pullback_prob_scale (a documented constants knob) so the machinery runs
// within laptop-sized windows.

#include <gtest/gtest.h>

#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core::punctual {
namespace {

Params fast_params() {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 8;
  p.pullback_window_frac = 0.1;
  return p;
}

Params electing_params() {
  Params p = fast_params();
  p.pullback_prob_log_exp = 0.0;
  p.pullback_prob_scale = 256.0;  // claims fire within small windows
  return p;
}

TEST(PunctualIntegration, LoneJobSucceedsViaAnarchy) {
  Params p = fast_params();
  p.lambda = 4;  // boost the anarchist rate for a near-certain lone success
  const auto instance = workload::gen_batch(1, 1 << 12, 0);
  sim::SimConfig config;
  config.seed = 2;
  const auto result = sim::run(instance, make_punctual_factory(p), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(PunctualIntegration, LoneJobBecomesLeaderAndDeliversAtAbdication) {
  const Params p = electing_params();
  const auto instance = workload::gen_batch(1, 1 << 12, 0);
  sim::SimConfig config;
  config.seed = 5;
  config.record_slots = true;
  const auto result = sim::run(instance, make_punctual_factory(p), config);
  ASSERT_EQ(result.successes(), 1);
  // A leader delivers its data in its final timekeeper slot, so the
  // success must land near the end of the window.
  EXPECT_GT(result.jobs[0].success_slot,
            result.jobs[0].deadline - 2 * kRoundLength);
  // Timekeeper heartbeats must have been broadcast.
  EXPECT_GT(result.metrics.timekeeper_successes, 10);
}

TEST(PunctualIntegration, TinyWindowUsesDesperateFallback) {
  Params p = fast_params();
  p.punctual_min_window = 64;
  const auto instance = workload::gen_batch(1, 48, 0);
  sim::SimConfig config;
  config.seed = 3;
  const auto result = sim::run(instance, make_punctual_factory(p), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(PunctualIntegration, TwoArrivalsAgreeOnRoundGrid) {
  // Job 0 arrives into silence and announces a frame; job 1 arrives later
  // and must adopt the same grid (same global slot -> same offset).
  const Params p = fast_params();
  workload::Instance instance;
  instance.jobs = {{0, 1 << 12}, {100, (1 << 12) + 100}};
  sim::SimConfig config;
  config.seed = 8;
  sim::Simulation sim(instance, make_punctual_factory(p), config);

  bool compared = false;
  while (sim.step()) {
    if (sim.now() < 150 || sim.now() > 400) {
      continue;
    }
    auto* a = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    auto* b = dynamic_cast<PunctualProtocol*>(sim.protocol(1));
    if (a == nullptr || b == nullptr) {
      continue;
    }
    if (!a->clock().synced() || !b->clock().synced()) {
      continue;
    }
    // Translate both anchors to global slots and compare round phases.
    const Slot t = sim.now();
    const std::int64_t off_a = a->clock().offset(t - 0);
    const std::int64_t off_b = b->clock().offset(t - 100);
    EXPECT_EQ(off_a, off_b) << "slot " << t;
    compared = true;
  }
  EXPECT_TRUE(compared);
  sim.finish();
}

TEST(PunctualIntegration, FollowersRunAlignedUnderALeader) {
  // One long-window job becomes the leader; a batch of shorter jobs
  // arrives afterwards, hears the leader's heartbeat (deadline after
  // theirs) and runs ALIGNED inside the aligned slots.
  Params p = electing_params();
  p.lambda = 1;
  workload::Instance instance = workload::gen_batch(1, 1 << 14, 0);
  instance = workload::merge(instance,
                             workload::gen_batch(8, 1 << 13, 512));
  sim::SimConfig config;
  config.seed = 21;
  sim::Simulation sim(instance, make_punctual_factory(p), config);

  bool saw_leader = false;
  bool saw_follower = false;
  while (sim.step()) {
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(id));
      if (proto == nullptr) {
        continue;
      }
      saw_leader |= proto->is_leader();
      saw_follower |= proto->stage() == PunctualProtocol::Stage::kFollowRun;
    }
  }
  EXPECT_TRUE(saw_leader);
  EXPECT_TRUE(saw_follower);

  const auto result = sim.finish();
  // The followers (window 2^13) should essentially all succeed; the leader
  // delivers at abdication.
  std::int64_t follower_successes = 0;
  for (const auto& job : result.jobs) {
    if (job.window() == (1 << 13) && job.success) {
      ++follower_successes;
    }
  }
  EXPECT_GE(follower_successes, 7) << "of 8 followers";
}

TEST(PunctualIntegration, LaterDeadlineClaimDeposesLeader) {
  // Leader with window 2^12 elected first; a job with a much later deadline
  // arrives, slingshots (the leader's deadline is earlier than its own),
  // wins a claim, and deposes. The old leader still delivers its data in
  // the handoff timekeeper slot.
  Params p = electing_params();
  workload::Instance instance;
  instance.jobs = {{0, 1 << 12}, {256, 256 + (1 << 13)}};
  sim::SimConfig config;
  config.seed = 31;
  sim::Simulation sim(instance, make_punctual_factory(p), config);

  bool saw_handoff = false;
  bool second_led = false;
  while (sim.step()) {
    auto* first = dynamic_cast<PunctualProtocol*>(sim.protocol(0));
    auto* second = dynamic_cast<PunctualProtocol*>(sim.protocol(1));
    if (first != nullptr &&
        first->stage() == PunctualProtocol::Stage::kLeadHandoff) {
      saw_handoff = true;
    }
    if (second != nullptr && second->is_leader()) {
      second_led = true;
    }
  }
  const auto result = sim.finish();
  EXPECT_TRUE(second_led);
  if (saw_handoff) {
    // Deposed leaders deliver their data in the handoff slot.
    EXPECT_TRUE(result.jobs[0].success);
  }
  // The new leader delivers at its own abdication.
  EXPECT_TRUE(result.jobs[1].success);
}

TEST(PunctualIntegration, BatchWithoutElectionsGoesAnarchistAndDrains) {
  // With the paper's (tiny) claim rate nobody gets elected at this window
  // size: the batch rechecks, finds no leader, and releases the slingshot.
  // A small batch then drains through the anarchy slots.
  Params p = fast_params();
  p.lambda = 4;
  const auto instance = workload::gen_batch(4, 1 << 13, 0);
  sim::SimConfig config;
  config.seed = 12;
  sim::Simulation sim(instance, make_punctual_factory(p), config);
  bool saw_anarchist = false;
  while (sim.step()) {
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(id));
      if (proto != nullptr && proto->was_anarchist()) {
        saw_anarchist = true;
      }
    }
  }
  const auto result = sim.finish();
  EXPECT_TRUE(saw_anarchist);
  EXPECT_GE(result.successes(), 3) << "of 4";
}

TEST(PunctualIntegration, DeterministicAcrossRuns) {
  const Params p = electing_params();
  workload::Instance instance = workload::gen_batch(6, 1 << 12, 0);
  instance = workload::merge(instance, workload::gen_batch(3, 1 << 12, 777));
  sim::SimConfig config;
  config.seed = 1234;
  const auto a = sim::run(instance, make_punctual_factory(p), config);
  const auto b = sim::run(instance, make_punctual_factory(p), config);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].success, b.jobs[i].success);
    EXPECT_EQ(a.jobs[i].success_slot, b.jobs[i].success_slot);
  }
}

TEST(PunctualIntegration, GeneralInstanceMostlySucceeds) {
  Params p = fast_params();
  p.lambda = 4;
  workload::GeneralConfig config;
  config.min_window = 1 << 11;
  config.max_window = 1 << 13;
  config.gamma = 1.0 / 64;
  config.horizon = 1 << 15;
  util::Rng rng(808);
  const auto instance = workload::gen_general(config, rng);
  ASSERT_FALSE(instance.empty());
  sim::SimConfig sc;
  sc.seed = 808;
  const auto result = sim::run(instance, make_punctual_factory(p), sc);
  EXPECT_GE(result.success_rate(), 0.8)
      << result.successes() << "/" << result.jobs.size();
}

TEST(PunctualIntegration, GuardSlotsStaySilent) {
  // Once the system is synced, guard slots must never carry transmissions
  // (the two-consecutive-busy invariant depends on it).
  const Params p = electing_params();
  const auto instance = workload::gen_batch(5, 1 << 12, 0);
  sim::SimConfig config;
  config.seed = 44;
  sim::Simulation sim(instance, make_punctual_factory(p), config);

  // Find the frame via any synced job, then check guard silence.
  std::int64_t violations = 0;
  Slot anchor_global = kNoSlot;
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission> tx) {
    if (anchor_global == kNoSlot) {
      return;
    }
    const std::int64_t off = (rec.slot - anchor_global) % kRoundLength;
    if (slot_type(off) == SlotType::kGuard && !tx.empty()) {
      ++violations;
    }
  });
  while (sim.step()) {
    if (anchor_global != kNoSlot) {
      continue;
    }
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(id));
      if (proto != nullptr && proto->clock().synced()) {
        // All jobs released at 0: since-release == global.
        const Slot t = sim.now();
        anchor_global = t - proto->clock().offset(t);
        break;
      }
    }
  }
  sim.finish();
  EXPECT_EQ(violations, 0);
}

}  // namespace
}  // namespace crmd::core::punctual
