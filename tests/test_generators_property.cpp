// Parameterized property sweeps over the workload generators: every
// generated instance must honor its advertised slack guarantee, its window
// bounds, and its horizon, across a grid of (gamma, fill, pow2) settings.

#include <gtest/gtest.h>

#include "util/math.hpp"
#include "util/rng.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"
#include "workload/trim.hpp"

namespace crmd::workload {
namespace {

struct GenCase {
  double gamma;
  double fill;
  bool pow2;
};

class GeneralGenProperties : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneralGenProperties, FeasibleWithinBoundsAndHorizon) {
  const auto [gamma, fill, pow2] = GetParam();
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 10;
  config.gamma = gamma;
  config.fill = fill;
  config.pow2_windows = pow2;
  config.horizon = 1 << 12;
  util::Rng rng(static_cast<std::uint64_t>(gamma * 1e6) +
                static_cast<std::uint64_t>(fill * 100) + (pow2 ? 7 : 0));
  for (int rep = 0; rep < 4; ++rep) {
    const Instance inst = gen_general(config, rng);
    EXPECT_TRUE(inst.valid());
    EXPECT_TRUE(is_slack_feasible(inst, gamma));
    for (const auto& j : inst.jobs) {
      EXPECT_GE(j.window(), config.min_window);
      EXPECT_LE(j.window(), config.max_window);
      EXPECT_GE(j.release, 0);
      EXPECT_LE(j.deadline, config.horizon);
      if (pow2) {
        EXPECT_TRUE(util::is_pow2(j.window()));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeneralGenProperties,
    ::testing::Values(GenCase{1.0 / 4, 1.0, false},
                      GenCase{1.0 / 4, 0.25, false},
                      GenCase{1.0 / 8, 1.0, true},
                      GenCase{1.0 / 8, 0.5, false},
                      GenCase{1.0 / 16, 1.0, false},
                      GenCase{1.0 / 16, 0.1, true},
                      GenCase{1.0 / 32, 1.0, true}));

class AlignedGenProperties : public ::testing::TestWithParam<GenCase> {};

TEST_P(AlignedGenProperties, FeasibleAlignedWithinHorizon) {
  const auto [gamma, fill, unused] = GetParam();
  (void)unused;
  AlignedConfig config;
  config.min_class = 5;
  config.max_class = 9;
  config.gamma = gamma;
  config.fill = fill;
  config.horizon = 1 << 11;
  util::Rng rng(static_cast<std::uint64_t>(gamma * 1e6) +
                static_cast<std::uint64_t>(fill * 100));
  for (int rep = 0; rep < 4; ++rep) {
    const Instance inst = gen_aligned(config, rng);
    EXPECT_TRUE(inst.valid());
    EXPECT_TRUE(inst.is_aligned());
    EXPECT_TRUE(is_slack_feasible(inst, gamma));
    EXPECT_LE(inst.max_deadline(), config.horizon);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AlignedGenProperties,
    ::testing::Values(GenCase{1.0 / 4, 1.0, false},
                      GenCase{1.0 / 4, 0.3, false},
                      GenCase{1.0 / 8, 1.0, false},
                      GenCase{1.0 / 8, 0.6, false},
                      GenCase{1.0 / 16, 1.0, false}));

TEST(GeneratorDensity, FillOneApproachesTheFeasibilityCeiling) {
  // At fill = 1 the generator should land within a constant factor of the
  // ceiling (horizon / L jobs); at fill = 0.1 roughly a tenth of that.
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 10;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 13;

  util::Rng rng_full(5);
  config.fill = 1.0;
  const auto full = gen_general(config, rng_full);
  const double ceiling =
      static_cast<double>(config.horizon) / 8.0;  // horizon / L
  EXPECT_GT(static_cast<double>(full.size()), 0.4 * ceiling);
  EXPECT_LE(static_cast<double>(full.size()), ceiling + 1);

  util::Rng rng_thin(5);
  config.fill = 0.1;
  const auto thin = gen_general(config, rng_thin);
  EXPECT_LT(thin.size() * 4, full.size());
}

TEST(GeneratorDensity, StarvationInstanceSaturatesSlack) {
  // The Lemma 5 instance is exactly γ-slack feasible and not (γ/2)'-slack
  // feasible beyond the construction: max_inflation == ceil(1/γ) exactly.
  for (const double gamma : {0.5, 0.25, 0.125}) {
    const auto inst = gen_starvation(32, gamma);
    EXPECT_EQ(max_inflation(inst),
              static_cast<std::int64_t>(1.0 / gamma))
        << "gamma=" << gamma;
  }
}

TEST(GeneratorDeterminism, SameSeedSameInstance) {
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 9;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 11;
  util::Rng a(99);
  util::Rng b(99);
  const auto ia = gen_general(config, a);
  const auto ib = gen_general(config, b);
  ASSERT_EQ(ia.size(), ib.size());
  for (std::size_t i = 0; i < ia.size(); ++i) {
    EXPECT_EQ(ia.jobs[i], ib.jobs[i]);
  }
}

TEST(GeneratorTrim, TrimmedGeneralInstancesStayFeasible) {
  // gen_general guarantees feasibility *of the trimmed instance* by
  // construction (it charges trimmed cores); check the actual trimmed
  // instance verifies.
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 9;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 11;
  util::Rng rng(123);
  for (int rep = 0; rep < 4; ++rep) {
    const auto inst = gen_general(config, rng);
    EXPECT_TRUE(is_slack_feasible(trimmed(inst), config.gamma));
  }
}

}  // namespace
}  // namespace crmd::workload
