// Edge-case and failure-injection tests for PUNCTUAL: the recheck-halving
// rule, the anarchist-fallback extension, desperate-mode delivery, blanket
// jamming robustness (no crash, graceful failure), and frame continuity
// across leader handoffs.

#include <gtest/gtest.h>

#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core::punctual {
namespace {

using Stage = PunctualProtocol::Stage;

Params electing_params() {
  Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 8;
  p.pullback_prob_log_exp = 0.0;
  p.pullback_prob_scale = 256.0;
  p.pullback_window_frac = 0.1;
  return p;
}

TEST(PunctualEdges, RecheckHalvesWindowForMidLeader) {
  // Leader L has window 2^14 starting at 0; job J arrives at 200 with the
  // same window size, so J's deadline (16584) is later than L's (16384)
  // and J slingshots. J's claims are disabled (scale tiny), so J rides to
  // the recheck, where L's deadline still clears J's *half*-deadline
  // (8192 since J's release) — J must halve its effective window and
  // follow.
  Params leader_p = electing_params();
  Params follower_p = leader_p;
  follower_p.pullback_prob_scale = 1e-9;
  follower_p.pullback_prob_log_exp = 3.0;

  workload::Instance instance;
  instance.jobs = {{0, 1 << 14}, {200, 200 + (1 << 14)}};
  // Per-job params: job 0 elects, job 1 cannot claim.
  const sim::ProtocolFactory factory = [&](const sim::JobInfo& info,
                                           util::Rng rng) {
    return std::make_unique<PunctualProtocol>(
        info.id == 0 ? leader_p : follower_p, rng);
  };
  sim::SimConfig config;
  config.seed = 11;
  sim::Simulation sim(instance, factory, config);
  bool halved = false;
  bool followed = false;
  while (sim.step()) {
    auto* second = dynamic_cast<PunctualProtocol*>(sim.protocol(1));
    if (second == nullptr) {
      continue;
    }
    if (second->effective_window() == (1 << 14) / 2) {
      halved = true;
    }
    if (second->stage() == Stage::kFollowWait ||
        second->stage() == Stage::kFollowRun) {
      followed = true;
    }
  }
  sim.finish();
  EXPECT_TRUE(halved) << "recheck should halve the effective window";
  EXPECT_TRUE(followed);
}

TEST(PunctualEdges, AnarchistFallbackRescuesTruncatedFollowers) {
  // Followers whose trimmed core is too small for ALIGNED's overhead give
  // up (paper) or go anarchist (extension). With the fallback they keep a
  // chance at delivery.
  for (const bool fallback : {false, true}) {
    Params p = electing_params();
    p.lambda = 4;  // λℓ² heavy: small cores truncate
    p.anarchist_fallback_on_truncation = fallback;
    workload::Instance instance = workload::gen_batch(1, 1 << 13, 0);
    instance = workload::merge(instance,
                               workload::gen_batch(6, 1 << 12, 300));
    sim::SimConfig config;
    config.seed = 21;
    sim::Simulation sim(instance, make_punctual_factory(p), config);
    bool saw_giveup = false;
    bool saw_anarchist_after_follow = false;
    while (sim.step()) {
      for (const JobId id : sim.live_jobs()) {
        auto* proto =
            dynamic_cast<PunctualProtocol*>(sim.protocol(id));
        if (proto == nullptr) {
          continue;
        }
        saw_giveup |= proto->stage() == Stage::kGaveUp;
        if (proto->stage() == Stage::kAnarchist &&
            proto->core_window().has_value()) {
          saw_anarchist_after_follow = true;
        }
      }
    }
    sim.finish();
    if (fallback) {
      // If any follow truncated, it must have turned anarchist, not
      // given up.
      EXPECT_FALSE(saw_giveup && !saw_anarchist_after_follow);
    }
  }
}

TEST(PunctualEdges, DesperateJobDeliversAlone) {
  Params p = electing_params();
  p.punctual_min_window = 256;
  sim::SimConfig config;
  config.seed = 31;
  const auto result = sim::run(workload::gen_batch(1, 200, 0),
                               make_punctual_factory(p), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(PunctualEdges, BlanketJammingFailsGracefully) {
  // Total jamming: nothing can ever be delivered, sync sees permanent
  // busy — the protocol must not crash, loop, or deliver.
  const Params p = electing_params();
  sim::SimConfig config;
  config.seed = 41;
  config.horizon = 1 << 12;
  const auto result =
      sim::run(workload::gen_batch(5, 1 << 11, 0), make_punctual_factory(p),
               config, sim::make_blanket_jammer(1.0));
  EXPECT_EQ(result.successes(), 0);
  EXPECT_EQ(result.metrics.data_successes, 0);
  EXPECT_GT(result.metrics.jammed_slots, 0);
}

TEST(PunctualEdges, HeavyJammingDegradesButRunsToCompletion) {
  const Params p = electing_params();
  sim::SimConfig config;
  config.seed = 43;
  const auto result =
      sim::run(workload::gen_batch(8, 1 << 12, 0), make_punctual_factory(p),
               config, sim::make_random_jammer(0.3, 0.5, util::Rng(7)));
  // No guarantees under random mid-round jamming (sync markers get faked),
  // but the run must terminate and results must be well-formed.
  for (const auto& job : result.jobs) {
    if (job.success) {
      EXPECT_GE(job.success_slot, job.release);
      EXPECT_LT(job.success_slot, job.deadline);
    }
  }
}

TEST(PunctualEdges, NewLeaderContinuesOldFrame) {
  // Two successive leaders: the second (deposing) leader must announce
  // times consistent with the first's lineage — observers never see the
  // clock jump.
  const Params p = electing_params();
  workload::Instance instance;
  instance.jobs = {{0, 1 << 12}, {256, 256 + (1 << 13)}};
  sim::SimConfig config;
  config.seed = 51;
  sim::Simulation sim(instance, make_punctual_factory(p), config);
  Slot prev_slot = kNoSlot;
  std::int64_t prev_time = 0;
  bool checked = false;
  sim.set_observer([&](const sim::SlotRecord& rec,
                       std::span<const sim::Transmission> tx) {
    if (rec.outcome != sim::SlotOutcome::kSuccess || tx.size() != 1) {
      return;
    }
    const sim::Message& m = tx.front().message;
    if (m.kind != sim::MessageKind::kTimekeeper) {
      return;
    }
    if (prev_slot != kNoSlot) {
      const std::int64_t rounds = (rec.slot - prev_slot) / kRoundLength;
      EXPECT_EQ(m.time - prev_time, rounds)
          << "clock discontinuity at slot " << rec.slot;
      checked = true;
    }
    prev_slot = rec.slot;
    prev_time = m.time;
  });
  sim.finish();
  EXPECT_TRUE(checked);
}

TEST(PunctualEdges, EffectiveWindowNeverExceedsReal) {
  const Params p = electing_params();
  workload::GeneralConfig config;
  config.min_window = 1 << 9;
  config.max_window = 1 << 11;
  config.gamma = 1.0 / 8;
  config.fill = 0.5;
  config.horizon = 1 << 13;
  util::Rng rng(61);
  const auto instance = workload::gen_general(config, rng);
  if (instance.empty()) {
    GTEST_SKIP();
  }
  sim::SimConfig sc;
  sc.seed = 61;
  sim::Simulation sim(instance, make_punctual_factory(p), sc);
  while (sim.step()) {
    for (const JobId id : sim.live_jobs()) {
      auto* proto = dynamic_cast<PunctualProtocol*>(sim.protocol(id));
      if (proto != nullptr) {
        EXPECT_LE(proto->effective_window(),
                  instance.jobs[id].window());
        EXPECT_GE(proto->effective_window(),
                  instance.jobs[id].window() / 2);
      }
    }
  }
  sim.finish();
}

}  // namespace
}  // namespace crmd::core::punctual
