// Tests for ALIGNED's size-estimation protocol: bookkeeping unit tests plus
// a Monte-Carlo accuracy sweep against Lemma 8's [2n̂, τ²n̂] guarantee.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/aligned/estimation.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

namespace crmd::core::aligned {
namespace {

Params test_params() {
  Params p;
  p.lambda = 2;
  p.tau = 64;
  return p;
}

TEST(Estimation, PhaseBookkeeping) {
  const Params p = test_params();
  const int level = 4;
  EstimationState est(p, level);
  EXPECT_FALSE(est.complete());
  EXPECT_EQ(est.steps_taken(), 0);
  EXPECT_EQ(est.current_phase(), 1);
  EXPECT_DOUBLE_EQ(est.tx_probability(), 0.5);

  // Drive through all λℓ² = 32 steps; phases advance every λℓ = 8 steps.
  for (int step = 0; step < p.lambda * level * level; ++step) {
    EXPECT_FALSE(est.complete());
    const int expected_phase = step / (p.lambda * level) + 1;
    EXPECT_EQ(est.current_phase(), expected_phase);
    EXPECT_DOUBLE_EQ(est.tx_probability(),
                     std::ldexp(1.0, -expected_phase));
    est.record(sim::SlotOutcome::kSilence);
  }
  EXPECT_TRUE(est.complete());
}

TEST(Estimation, AllSilentResolvesToZero) {
  const Params p = test_params();
  EstimationState est(p, 3);
  for (int i = 0; i < p.lambda * 9; ++i) {
    est.record(sim::SlotOutcome::kSilence);
  }
  EXPECT_TRUE(est.complete());
  EXPECT_EQ(est.estimate(), 0);
}

TEST(Estimation, EstimateIsTauTimesBestPhase) {
  const Params p = test_params();
  const int level = 5;
  EstimationState est(p, level);
  // Craft successes: phase 3 gets the most.
  const std::int64_t phase_len = p.estimation_phase_len(level);
  for (int phase = 1; phase <= level; ++phase) {
    for (std::int64_t s = 0; s < phase_len; ++s) {
      const bool success = (phase == 3 && s < 5) || (phase == 2 && s < 2);
      est.record(success ? sim::SlotOutcome::kSuccess
                         : sim::SlotOutcome::kNoise);
    }
  }
  EXPECT_TRUE(est.complete());
  EXPECT_EQ(est.phase_successes(3), 5);
  EXPECT_EQ(est.phase_successes(2), 2);
  EXPECT_EQ(est.estimate(), p.tau * util::pow2(3));
}

TEST(Estimation, TieBreaksToSmallestPhase) {
  const Params p = test_params();
  const int level = 4;
  EstimationState est(p, level);
  const std::int64_t phase_len = p.estimation_phase_len(level);
  for (int phase = 1; phase <= level; ++phase) {
    for (std::int64_t s = 0; s < phase_len; ++s) {
      // Phases 2 and 4 tie with 3 successes each.
      const bool success = (phase == 2 || phase == 4) && s < 3;
      est.record(success ? sim::SlotOutcome::kSuccess
                         : sim::SlotOutcome::kSilence);
    }
  }
  EXPECT_EQ(est.estimate(), p.tau * util::pow2(2));
}

TEST(Estimation, NoiseDoesNotCount) {
  const Params p = test_params();
  EstimationState est(p, 3);
  for (int i = 0; i < p.lambda * 9; ++i) {
    est.record(sim::SlotOutcome::kNoise);
  }
  EXPECT_EQ(est.estimate(), 0);
}

// Monte-Carlo: simulate a batch of n̂ jobs running the estimation protocol
// (optionally under reactive jamming) and check Lemma 8's bracket.
struct EstimationCase {
  std::int64_t n_hat;
  double p_jam;
};

class EstimationAccuracy : public ::testing::TestWithParam<EstimationCase> {};

std::int64_t simulate_estimate(const Params& p, int level,
                               std::int64_t n_hat, double p_jam,
                               util::Rng& rng) {
  EstimationState est(p, level);
  while (!est.complete()) {
    const double tx_p = est.tx_probability();
    int transmitters = 0;
    for (std::int64_t j = 0; j < n_hat; ++j) {
      transmitters += rng.bernoulli(tx_p) ? 1 : 0;
    }
    sim::SlotOutcome outcome = sim::SlotOutcome::kSilence;
    if (transmitters == 1) {
      outcome = sim::SlotOutcome::kSuccess;
    } else if (transmitters >= 2) {
      outcome = sim::SlotOutcome::kNoise;
    }
    // Reactive jamming: attempt on successes, succeed with p_jam.
    if (outcome == sim::SlotOutcome::kSuccess && rng.bernoulli(p_jam)) {
      outcome = sim::SlotOutcome::kNoise;
    }
    est.record(outcome);
  }
  return est.estimate();
}

TEST_P(EstimationAccuracy, EstimateWithinLemma8Bracket) {
  const auto [n_hat, p_jam] = GetParam();
  Params p = test_params();
  p.lambda = 4;  // higher λ: the bracket is a w.h.p. claim
  const int level = 14;
  util::Rng rng(1000 + static_cast<std::uint64_t>(n_hat * 31) +
                static_cast<std::uint64_t>(p_jam * 1000));

  constexpr int kReps = 40;
  int in_bracket = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const std::int64_t est = simulate_estimate(p, level, n_hat, p_jam, rng);
    if (est >= 2 * n_hat && est <= p.tau * p.tau * n_hat) {
      ++in_bracket;
    }
  }
  // Lemma 8 promises 1 - 1/w^Θ(λ); at these parameters virtually every rep
  // should land in the bracket.
  EXPECT_GE(in_bracket, kReps - 2)
      << "n_hat=" << n_hat << " p_jam=" << p_jam;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EstimationAccuracy,
    ::testing::Values(EstimationCase{1, 0.0}, EstimationCase{2, 0.0},
                      EstimationCase{8, 0.0}, EstimationCase{32, 0.0},
                      EstimationCase{128, 0.0}, EstimationCase{1024, 0.0},
                      EstimationCase{8, 0.5}, EstimationCase{128, 0.5},
                      EstimationCase{1024, 0.5}));

}  // namespace
}  // namespace crmd::core::aligned
