// Tests for SimMetrics / SimResult accounting.

#include <gtest/gtest.h>

#include "sim/metrics.hpp"
#include "test_helpers.hpp"
#include "sim/simulator.hpp"

namespace crmd::sim {
namespace {

SlotRecord record(SlotOutcome outcome, MessageKind kind = MessageKind::kData,
                  double contention = 0.0, bool jammed = false) {
  SlotRecord rec;
  rec.outcome = outcome;
  rec.success_kind = kind;
  rec.contention = contention;
  rec.jammed = jammed;
  return rec;
}

TEST(Metrics, CountsOutcomesByKind) {
  SimMetrics m;
  m.record(record(SlotOutcome::kSilence));
  m.record(record(SlotOutcome::kSuccess, MessageKind::kData));
  m.record(record(SlotOutcome::kSuccess, MessageKind::kControl));
  m.record(record(SlotOutcome::kSuccess, MessageKind::kStart));
  m.record(record(SlotOutcome::kSuccess, MessageKind::kLeaderClaim));
  m.record(record(SlotOutcome::kSuccess, MessageKind::kTimekeeper));
  m.record(record(SlotOutcome::kNoise, MessageKind::kData, 2.0, true));

  EXPECT_EQ(m.slots_simulated, 7);
  EXPECT_EQ(m.silent_slots, 1);
  EXPECT_EQ(m.success_slots, 5);
  EXPECT_EQ(m.noise_slots, 1);
  EXPECT_EQ(m.jammed_slots, 1);
  EXPECT_EQ(m.data_successes, 1);
  EXPECT_EQ(m.control_successes, 1);
  EXPECT_EQ(m.start_successes, 1);
  EXPECT_EQ(m.claim_successes, 1);
  EXPECT_EQ(m.timekeeper_successes, 1);
  EXPECT_EQ(m.contention.count(), 7u);
}

TEST(Metrics, DataThroughput) {
  SimMetrics m;
  EXPECT_DOUBLE_EQ(m.data_throughput(), 0.0);
  m.record(record(SlotOutcome::kSuccess, MessageKind::kData));
  m.record(record(SlotOutcome::kSilence));
  m.record(record(SlotOutcome::kSilence));
  m.record(record(SlotOutcome::kSilence));
  EXPECT_DOUBLE_EQ(m.data_throughput(), 0.25);
}

TEST(Metrics, JobResultHelpers) {
  JobResult job;
  job.release = 100;
  job.deadline = 200;
  EXPECT_EQ(job.window(), 100);
  EXPECT_EQ(job.latency(), -1);
  job.success = true;
  job.success_slot = 149;
  EXPECT_EQ(job.latency(), 50);
}

TEST(Metrics, SimResultRates) {
  SimResult result;
  EXPECT_DOUBLE_EQ(result.success_rate(), 1.0) << "vacuous on empty runs";
  JobResult ok;
  ok.success = true;
  JobResult bad;
  result.jobs = {ok, bad, ok};
  EXPECT_EQ(result.successes(), 2);
  EXPECT_NEAR(result.success_rate(), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, SlotRecordCarriesLiveJobsCount) {
  auto instance = test::instance_of({{0, 8}, {0, 8}, {4, 12}});
  SimConfig config;
  config.record_slots = true;
  const auto result =
      run(instance, test::script_factory({100}), config);
  ASSERT_FALSE(result.slots.empty());
  EXPECT_EQ(result.slots.front().live_jobs, 2u);
  bool saw_three = false;
  for (const auto& rec : result.slots) {
    if (rec.slot >= 4 && rec.slot < 8) {
      EXPECT_EQ(rec.live_jobs, 3u);
      saw_three = true;
    }
  }
  EXPECT_TRUE(saw_three);
}

}  // namespace
}  // namespace crmd::sim
