// Unit tests for channel resolution, message builders, and jammer policies.

#include <gtest/gtest.h>

#include <vector>

#include "sim/channel.hpp"
#include "sim/jammer.hpp"
#include "sim/message.hpp"

namespace crmd::sim {
namespace {

TEST(Channel, EmptySlotIsSilent) {
  const std::vector<Transmission> none;
  const SlotFeedback fb = resolve_slot(none);
  EXPECT_EQ(fb.outcome, SlotOutcome::kSilence);
  EXPECT_FALSE(fb.message.has_value());
}

TEST(Channel, SingleTransmissionSucceedsAndDeliversContent) {
  std::vector<Transmission> tx{{/*job=*/3, make_leader_claim(3, 99)}};
  const SlotFeedback fb = resolve_slot(tx);
  ASSERT_EQ(fb.outcome, SlotOutcome::kSuccess);
  ASSERT_TRUE(fb.message.has_value());
  EXPECT_EQ(fb.message->kind, MessageKind::kLeaderClaim);
  EXPECT_EQ(fb.message->sender, 3u);
  EXPECT_EQ(fb.message->deadline_in, 99);
}

TEST(Channel, TwoTransmissionsCollide) {
  std::vector<Transmission> tx{{1, make_data(1)}, {2, make_data(2)}};
  const SlotFeedback fb = resolve_slot(tx);
  EXPECT_EQ(fb.outcome, SlotOutcome::kNoise);
  EXPECT_FALSE(fb.message.has_value());
}

TEST(Channel, ManyTransmissionsCollide) {
  std::vector<Transmission> tx;
  for (JobId j = 0; j < 50; ++j) {
    tx.push_back({j, make_control(j)});
  }
  EXPECT_EQ(resolve_slot(tx).outcome, SlotOutcome::kNoise);
}

TEST(Message, BuildersSetFields) {
  const Message d = make_data(7);
  EXPECT_EQ(d.kind, MessageKind::kData);
  EXPECT_EQ(d.sender, 7u);
  EXPECT_FALSE(d.abdicating);

  const Message c = make_control(8);
  EXPECT_EQ(c.kind, MessageKind::kControl);

  const Message s = make_start(9);
  EXPECT_EQ(s.kind, MessageKind::kStart);

  const Message tk = make_timekeeper(10, 1234, 55, true);
  EXPECT_EQ(tk.kind, MessageKind::kTimekeeper);
  EXPECT_EQ(tk.time, 1234);
  EXPECT_EQ(tk.deadline_in, 55);
  EXPECT_TRUE(tk.abdicating);
}

TEST(Message, KindNames) {
  EXPECT_STREQ(to_string(MessageKind::kData), "data");
  EXPECT_STREQ(to_string(MessageKind::kControl), "control");
  EXPECT_STREQ(to_string(MessageKind::kStart), "start");
  EXPECT_STREQ(to_string(MessageKind::kLeaderClaim), "leader-claim");
  EXPECT_STREQ(to_string(MessageKind::kTimekeeper), "timekeeper");
}

TEST(Channel, OutcomeNames) {
  EXPECT_STREQ(to_string(SlotOutcome::kSilence), "silence");
  EXPECT_STREQ(to_string(SlotOutcome::kSuccess), "success");
  EXPECT_STREQ(to_string(SlotOutcome::kNoise), "noise");
}

// ------------------------------------------------------------- jammers -----

TEST(Jammer, BlanketAlwaysWants) {
  auto j = make_blanket_jammer(0.5);
  EXPECT_TRUE(j->wants_jam(0, SlotOutcome::kSilence, nullptr));
  EXPECT_TRUE(j->wants_jam(1, SlotOutcome::kNoise, nullptr));
  const Message m = make_data(0);
  EXPECT_TRUE(j->wants_jam(2, SlotOutcome::kSuccess, &m));
  EXPECT_DOUBLE_EQ(j->p_jam(), 0.5);
}

TEST(Jammer, ReactiveOnlyWantsSuccesses) {
  auto j = make_reactive_jammer(0.4);
  EXPECT_FALSE(j->wants_jam(0, SlotOutcome::kSilence, nullptr));
  EXPECT_FALSE(j->wants_jam(0, SlotOutcome::kNoise, nullptr));
  const Message m = make_data(0);
  EXPECT_TRUE(j->wants_jam(0, SlotOutcome::kSuccess, &m));
}

TEST(Jammer, ControlTargetedFiltersKind) {
  auto j = make_control_jammer(0.5);
  const Message ctrl = make_control(0);
  const Message data = make_data(0);
  EXPECT_TRUE(j->wants_jam(0, SlotOutcome::kSuccess, &ctrl));
  EXPECT_FALSE(j->wants_jam(0, SlotOutcome::kSuccess, &data));
  EXPECT_FALSE(j->wants_jam(0, SlotOutcome::kSilence, nullptr));
}

TEST(Jammer, DataTargetedFiltersKind) {
  auto j = make_data_jammer(0.5);
  const Message ctrl = make_control(0);
  const Message data = make_data(0);
  EXPECT_FALSE(j->wants_jam(0, SlotOutcome::kSuccess, &ctrl));
  EXPECT_TRUE(j->wants_jam(0, SlotOutcome::kSuccess, &data));
}

TEST(Jammer, RandomAttemptRateIsHonored) {
  auto j = make_random_jammer(0.25, 0.5, util::Rng(99));
  int wants = 0;
  constexpr int kSlots = 20000;
  for (int i = 0; i < kSlots; ++i) {
    wants += j->wants_jam(i, SlotOutcome::kSilence, nullptr) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(wants) / kSlots, 0.25, 0.02);
}

}  // namespace
}  // namespace crmd::sim
