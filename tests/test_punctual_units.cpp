// Unit tests for PUNCTUAL's building blocks: round layout, clocks, and the
// derived parameter formulas.

#include <gtest/gtest.h>

#include "core/params.hpp"
#include "core/punctual/clock.hpp"
#include "core/punctual/round.hpp"

namespace crmd::core::punctual {
namespace {

TEST(Round, LayoutMatchesSpec) {
  // S S g T g A g L g N g
  EXPECT_EQ(slot_type(0), SlotType::kSync);
  EXPECT_EQ(slot_type(1), SlotType::kSync);
  EXPECT_EQ(slot_type(2), SlotType::kGuard);
  EXPECT_EQ(slot_type(3), SlotType::kTimekeeper);
  EXPECT_EQ(slot_type(4), SlotType::kGuard);
  EXPECT_EQ(slot_type(5), SlotType::kAligned);
  EXPECT_EQ(slot_type(6), SlotType::kGuard);
  EXPECT_EQ(slot_type(7), SlotType::kLeaderElection);
  EXPECT_EQ(slot_type(8), SlotType::kGuard);
  EXPECT_EQ(slot_type(9), SlotType::kAnarchy);
  EXPECT_EQ(slot_type(10), SlotType::kGuard);
}

TEST(Round, EveryUsefulSlotIsGuarded) {
  // No two non-guard slots are adjacent, including across the round wrap —
  // the invariant that makes two-consecutive-busy mean "round start".
  for (std::int64_t off = 2; off < kRoundLength; ++off) {
    const std::int64_t next = (off + 1) % kRoundLength;
    const bool here_busyable = slot_type(off) != SlotType::kGuard;
    const bool next_busyable =
        slot_type(next) != SlotType::kGuard && next != 0 && next != 1;
    EXPECT_FALSE(here_busyable && next_busyable) << "offset " << off;
  }
  // The wrap: anarchy (9) -> guard (10) -> sync (0). Offset 10 must be a
  // guard for the invariant to hold.
  EXPECT_EQ(slot_type(kRoundLength - 1), SlotType::kGuard);
}

TEST(Round, TypeNames) {
  EXPECT_STREQ(to_string(SlotType::kSync), "sync");
  EXPECT_STREQ(to_string(SlotType::kGuard), "guard");
  EXPECT_STREQ(to_string(SlotType::kTimekeeper), "timekeeper");
  EXPECT_STREQ(to_string(SlotType::kAligned), "aligned");
  EXPECT_STREQ(to_string(SlotType::kLeaderElection), "leader-election");
  EXPECT_STREQ(to_string(SlotType::kAnarchy), "anarchy");
}

TEST(RoundClock, OffsetsAndRounds) {
  RoundClock clock;
  EXPECT_FALSE(clock.synced());
  clock.sync(5);
  EXPECT_TRUE(clock.synced());
  EXPECT_EQ(clock.offset(5), 0);
  EXPECT_EQ(clock.offset(5 + 3), 3);
  EXPECT_EQ(clock.offset(5 + kRoundLength), 0);
  EXPECT_EQ(clock.local_round(5), 0);
  EXPECT_EQ(clock.local_round(5 + kRoundLength - 1), 0);
  EXPECT_EQ(clock.local_round(5 + kRoundLength), 1);
  EXPECT_EQ(clock.local_round(5 + 5 * kRoundLength + 7), 5);
}

TEST(RoundClock, LeaderFrameTranslation) {
  RoundClock clock;
  clock.sync(0);
  EXPECT_FALSE(clock.frame_known());
  // Heard "time = 100" in local round 2.
  clock.set_frame(100, 2 * kRoundLength + 3);
  ASSERT_TRUE(clock.frame_known());
  EXPECT_EQ(clock.leader_round(2 * kRoundLength + 3), 100);
  EXPECT_EQ(clock.leader_round(3 * kRoundLength), 101);
  EXPECT_TRUE(clock.frame_matches(101, 3 * kRoundLength + 5));
  EXPECT_FALSE(clock.frame_matches(150, 3 * kRoundLength + 5));
  clock.clear_frame();
  EXPECT_FALSE(clock.frame_known());
}

TEST(RoundClock, TwoObserversOfSameBroadcastAgree) {
  // Jobs synced at different anchors (same grid) hearing the same heartbeat
  // compute identical leader rounds for every later slot. Anchors differ by
  // a multiple of kRoundLength in *global* time; here job B released 2
  // rounds after job A.
  RoundClock a;
  RoundClock b;
  a.sync(0);                       // A's local slot 0 == global slot 0
  b.sync(0);                       // B's local slot 0 == global slot 22
  const Slot heard_global = 4 * kRoundLength + 3;
  a.set_frame(77, heard_global);
  b.set_frame(77, heard_global - 2 * kRoundLength);
  for (int r = 0; r < 5; ++r) {
    const Slot g = heard_global + r * kRoundLength;
    EXPECT_EQ(a.leader_round(g), b.leader_round(g - 2 * kRoundLength));
  }
}

// ------------------------------------------------------- params formulas ---

TEST(Params, EstimationFormulas) {
  Params p;
  p.lambda = 3;
  EXPECT_EQ(p.estimation_steps(5), 75);
  EXPECT_EQ(p.estimation_phase_len(5), 15);
}

TEST(Params, PullbackProbMatchesPaperShape) {
  Params p;
  p.pullback_prob_log_exp = 3.0;
  const Slot w = 1 << 12;  // log2 w = 12
  const double expect = 1.0 / (static_cast<double>(w) * 12.0 * 12.0 * 12.0);
  EXPECT_NEAR(p.pullback_tx_prob(w), expect, 1e-12);
}

TEST(Params, PullbackLenIsCappedByWindowFraction) {
  Params p;
  p.lambda = 2;
  p.pullback_len_log_exp = 7.0;   // λ·12^7 would be astronomical
  p.pullback_window_frac = 0.25;
  const Slot w = 1 << 12;
  const std::int64_t expect_cap =
      static_cast<std::int64_t>(0.25 * static_cast<double>(w) / kRoundLength);
  EXPECT_EQ(p.pullback_elections(w), expect_cap);

  // With a tame exponent the uncapped value wins.
  p.pullback_len_log_exp = 1.0;
  EXPECT_EQ(p.pullback_elections(w), 24);  // λ·log2(w) = 2·12
}

TEST(Params, AnarchistProbShape) {
  Params p;
  p.lambda = 2;
  p.anarchist_log_exp = 1.0;
  const Slot w = 1 << 10;
  EXPECT_NEAR(p.anarchist_tx_prob(w), 2.0 * 10.0 / 1024.0, 1e-12);
  // Tiny windows cap at max_tx_prob.
  EXPECT_DOUBLE_EQ(p.anarchist_tx_prob(4), p.max_tx_prob);
}

TEST(Params, ValidateCatchesBadValues) {
  Params p;
  EXPECT_NO_THROW(p.validate());
  p.lambda = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.tau = 48;  // not a power of two
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.max_tx_prob = 0.9;  // violates Lemma 2's hypothesis
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.pullback_window_frac = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = Params{};
  p.min_class = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

TEST(Params, BroadcastStepsConventions) {
  Params p;
  p.lambda = 2;
  EXPECT_EQ(p.broadcast_steps(6, 0), 0) << "believed-empty class";
  EXPECT_EQ(p.broadcast_steps(6, 1), 2 * 36) << "equal phases only";
  EXPECT_EQ(p.broadcast_steps(6, 8), 2 * (2 * 8 - 2) + 2 * 36);
}

}  // namespace
}  // namespace crmd::core::punctual
