// Tests for instances, trimming, and the workload generators (including the
// constructive feasibility guarantees).

#include <gtest/gtest.h>

#include "util/math.hpp"
#include "util/rng.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"
#include "workload/instance.hpp"
#include "workload/trim.hpp"

namespace crmd::workload {
namespace {

// ------------------------------------------------------------ instance -----

TEST(Instance, BasicAccessors) {
  Instance inst;
  inst.jobs = {{10, 20}, {0, 64}, {5, 13}};
  EXPECT_EQ(inst.size(), 3u);
  EXPECT_EQ(inst.min_release(), 0);
  EXPECT_EQ(inst.max_deadline(), 64);
  EXPECT_EQ(inst.min_window(), 8);
  EXPECT_EQ(inst.max_window(), 64);
}

TEST(Instance, NormalizeSortsByReleaseThenDeadline) {
  Instance inst;
  inst.jobs = {{5, 9}, {0, 10}, {5, 7}, {0, 4}};
  inst.normalize();
  EXPECT_EQ(inst.jobs[0], (JobSpec{0, 4}));
  EXPECT_EQ(inst.jobs[1], (JobSpec{0, 10}));
  EXPECT_EQ(inst.jobs[2], (JobSpec{5, 7}));
  EXPECT_EQ(inst.jobs[3], (JobSpec{5, 9}));
}

TEST(Instance, ValidRejectsEmptyWindows) {
  Instance good;
  good.jobs = {{0, 1}};
  EXPECT_TRUE(good.valid());
  Instance bad;
  bad.jobs = {{5, 5}};
  EXPECT_FALSE(bad.valid());
  Instance negative;
  negative.jobs = {{-1, 5}};
  EXPECT_FALSE(negative.valid());
}

TEST(Instance, AlignedDetection) {
  Instance aligned;
  aligned.jobs = {{0, 8}, {8, 16}, {16, 32}};
  EXPECT_TRUE(aligned.is_aligned());
  Instance off;
  off.jobs = {{4, 12}};  // size 8 but start not a multiple of 8
  EXPECT_FALSE(off.is_aligned());
  Instance notpow2;
  notpow2.jobs = {{0, 6}};
  EXPECT_FALSE(notpow2.is_aligned());
}

TEST(Instance, EmptyInstanceAccessors) {
  const Instance inst;
  EXPECT_TRUE(inst.empty());
  EXPECT_EQ(inst.min_release(), 0);
  EXPECT_EQ(inst.max_deadline(), 0);
  EXPECT_TRUE(inst.valid());
  EXPECT_TRUE(inst.is_aligned());
}

// ------------------------------------------------------------ trimming -----

TEST(Trim, ExactAlignedWindowIsItself) {
  const AlignedWindow t = trimmed(16, 32);
  EXPECT_EQ(t.start, 16);
  EXPECT_EQ(t.level, 4);
  EXPECT_EQ(t.end(), 32);
}

TEST(Trim, KnownCases) {
  // [1, 8): size 7, largest aligned window inside is [4, 8) (size 4).
  const AlignedWindow t = trimmed(1, 8);
  EXPECT_EQ(t.start, 4);
  EXPECT_EQ(t.level, 2);

  // [5, 7): size 2 but crosses no aligned size-2 boundary fully => [5,6)
  // or [6,7) at level 0; align_up(5,2)=6, 6+2=8>7, so level 0 start 5.
  const AlignedWindow u = trimmed(5, 7);
  EXPECT_EQ(u.level, 0);
  EXPECT_EQ(u.start, 5);
}

TEST(Trim, QuarterLowerBoundHoldsOnRandomWindows) {
  util::Rng rng(404);
  for (int i = 0; i < 5000; ++i) {
    const Slot r = rng.range(0, 1 << 20);
    const Slot w = rng.range(1, 1 << 12);
    const AlignedWindow t = trimmed(r, r + w);
    ASSERT_GE(t.start, r);
    ASSERT_LE(t.end(), r + w);
    ASSERT_EQ(t.start % t.size(), 0) << "not aligned";
    // |trimmed(W)| >= |W|/4 (§4).
    ASSERT_GE(4 * t.size(), w);
  }
}

TEST(Trim, InstanceTrimmingPreservesJobCount) {
  Instance inst;
  inst.jobs = {{3, 20}, {7, 100}, {0, 5}};
  const Instance t = trimmed(inst);
  ASSERT_EQ(t.size(), 3u);
  for (const auto& j : t.jobs) {
    EXPECT_TRUE(util::is_pow2(j.window()));
    EXPECT_EQ(j.release % j.window(), 0);
  }
}

TEST(Trim, Lemma15TrimmedKeepsQuarterSlack) {
  // A 4γ-slack feasible instance stays γ-slack feasible after trimming
  // (Lemma 15). Verify on generator outputs: gen_general guarantees
  // γ-slack via trimmed charging, so the trimmed instance must be feasible
  // at the same inflation.
  util::Rng rng(505);
  GeneralConfig config;
  config.min_window = 1 << 8;
  config.max_window = 1 << 11;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 14;
  for (int rep = 0; rep < 5; ++rep) {
    const Instance inst = gen_general(config, rng);
    const Instance t = trimmed(inst);
    EXPECT_TRUE(is_slack_feasible(t, config.gamma));
  }
}

// ---------------------------------------------------------- generators -----

TEST(DyadicBudget, EnforcesCapacityOnWindowAndAncestors) {
  DyadicBudget budget(/*min_level=*/3, /*max_level=*/6, /*horizon=*/64,
                      /*gamma=*/0.5);
  // Capacity at level 3 is 4 slots.
  EXPECT_EQ(budget.capacity(3), 4);
  EXPECT_TRUE(budget.try_charge(0, 3, 4));
  EXPECT_FALSE(budget.try_charge(0, 3, 1)) << "window full";
  // Sibling window still has room, but the shared ancestors absorb too.
  EXPECT_TRUE(budget.try_charge(8, 3, 4));
  // Level-4 ancestor [0,16) now holds 8 = its capacity.
  EXPECT_EQ(budget.used(0, 4), 8);
  EXPECT_FALSE(budget.try_charge(0, 4, 1));
  // Disjoint level-4 window [16,32) unaffected.
  EXPECT_TRUE(budget.try_charge(16, 4, 8));
  // Level-6 root holds 16 out of 32.
  EXPECT_EQ(budget.used(0, 6), 16);
}

TEST(DyadicBudget, RejectsOutOfHorizonWindows) {
  DyadicBudget budget(2, 4, /*horizon=*/16, 0.5);
  EXPECT_TRUE(budget.try_charge(0, 2, 1));
  EXPECT_FALSE(budget.try_charge(16, 2, 1)) << "outside horizon";
}

TEST(GenAligned, ProducesAlignedFeasibleInstances) {
  util::Rng rng(99);
  AlignedConfig config;
  config.min_class = 6;
  config.max_class = 9;
  config.gamma = 1.0 / 4;
  config.horizon = 1 << 12;
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = gen_aligned(config, rng);
    EXPECT_TRUE(inst.valid());
    EXPECT_TRUE(inst.is_aligned());
    EXPECT_TRUE(is_slack_feasible(inst, config.gamma))
        << "rep " << rep << " with " << inst.size() << " jobs";
    for (const auto& j : inst.jobs) {
      EXPECT_GE(j.window(), util::pow2(config.min_class));
      EXPECT_LE(j.window(), util::pow2(config.max_class));
      EXPECT_LE(j.deadline, config.horizon);
    }
  }
}

TEST(GenAligned, FillScalesDensity) {
  AlignedConfig config;
  config.min_class = 6;
  config.max_class = 9;
  config.gamma = 1.0 / 4;
  config.horizon = 1 << 14;

  util::Rng rng_full(1);
  util::Rng rng_thin(1);
  config.fill = 1.0;
  const auto full = gen_aligned(config, rng_full);
  config.fill = 0.1;
  const auto thin = gen_aligned(config, rng_thin);
  EXPECT_GT(full.size(), thin.size());
}

TEST(GenGeneral, ProducesFeasibleInstances) {
  util::Rng rng(123);
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 10;
  config.gamma = 1.0 / 8;
  config.horizon = 1 << 13;
  for (int rep = 0; rep < 10; ++rep) {
    const Instance inst = gen_general(config, rng);
    EXPECT_TRUE(inst.valid());
    EXPECT_TRUE(is_slack_feasible(inst, config.gamma))
        << "rep " << rep << " with " << inst.size() << " jobs";
    for (const auto& j : inst.jobs) {
      EXPECT_GE(j.window(), config.min_window);
      EXPECT_LE(j.window(), config.max_window);
      EXPECT_GE(j.release, 0);
      EXPECT_LE(j.deadline, config.horizon);
    }
  }
}

TEST(GenGeneral, Pow2ModeRestrictsSizes) {
  util::Rng rng(321);
  GeneralConfig config;
  config.min_window = 1 << 7;
  config.max_window = 1 << 10;
  config.pow2_windows = true;
  const Instance inst = gen_general(config, rng);
  ASSERT_FALSE(inst.empty());
  for (const auto& j : inst.jobs) {
    EXPECT_TRUE(util::is_pow2(j.window()));
  }
}

TEST(GenStarvation, MatchesLemma5Construction) {
  const double gamma = 0.25;  // L = 4
  const Instance inst = gen_starvation(10, gamma);
  ASSERT_EQ(inst.size(), 10u);
  for (std::size_t j = 0; j < inst.size(); ++j) {
    EXPECT_EQ(inst.jobs[j].release, 0);
    EXPECT_EQ(inst.jobs[j].window(),
              static_cast<Slot>(4 * (j + 1)));
  }
  // The construction is γ-slack feasible (EDF serves job j in
  // ((j-1)/γ, j/γ]).
  EXPECT_TRUE(is_slack_feasible(inst, gamma));
}

TEST(GenBatch, SharedWindow) {
  const Instance inst = gen_batch(5, 64, 128);
  ASSERT_EQ(inst.size(), 5u);
  for (const auto& j : inst.jobs) {
    EXPECT_EQ(j.release, 128);
    EXPECT_EQ(j.deadline, 192);
  }
}

TEST(GenPeriodic, ReleasesFollowPeriods) {
  const std::vector<PeriodicFlow> flows{{/*period=*/16, /*deadline=*/16,
                                         /*offset=*/0},
                                        {32, 16, 8}};
  const Instance inst = gen_periodic(flows, 64);
  // Flow 1: releases 0,16,32,48 -> 4 jobs; flow 2: 8,40 -> 2 jobs.
  EXPECT_EQ(inst.size(), 6u);
  for (const auto& j : inst.jobs) {
    EXPECT_LE(j.deadline, 64);
  }
}

TEST(GenPeriodicFlows, DensityBoundImpliesFeasibility) {
  util::Rng rng(777);
  const double gamma = 1.0 / 8;
  const auto flows =
      gen_periodic_flows(20, /*min_period=*/256, /*max_period=*/2048, gamma,
                         /*fill=*/0.9, rng);
  ASSERT_FALSE(flows.empty());
  const Instance inst = gen_periodic(flows, 1 << 13);
  EXPECT_TRUE(is_slack_feasible(inst, gamma));
}

TEST(Merge, CombinesAndNormalizes) {
  const Instance a = gen_batch(2, 8, 0);
  const Instance b = gen_batch(3, 8, 16);
  const Instance m = merge(a, b);
  EXPECT_EQ(m.size(), 5u);
  EXPECT_LE(m.jobs.front().release, m.jobs.back().release);
}

}  // namespace
}  // namespace crmd::workload
