// End-to-end scenario tests mirroring the example applications, pinned
// with fixed seeds so regressions in any layer (generator, simulator,
// protocol) surface as behavioural changes.

#include <gtest/gtest.h>

#include <map>

#include "baselines/beb.hpp"
#include "baselines/edf.hpp"
#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

TEST(Scenario, IndustrialSensorsDeliverAlarmsAndPeriodics) {
  // The industrial_sensors example as an assertion: periodic flows plus
  // alarm bursts, PUNCTUAL delivering the bulk of both categories.
  const Slot horizon = 1 << 15;
  const Slot alarm_window = 1 << 10;
  util::Rng rng(2026);
  const auto flows = workload::gen_periodic_flows(
      12, 1 << 11, 1 << 13, 1.0 / 32, 0.8, rng);
  workload::Instance traffic = workload::gen_periodic(flows, horizon);
  traffic = workload::merge(traffic,
                            workload::gen_batch(4, alarm_window, 9000));
  traffic = workload::merge(traffic,
                            workload::gen_batch(4, alarm_window, 22000));
  ASSERT_TRUE(workload::is_slack_feasible(traffic, 1.0 / 16));

  core::Params p;
  p.lambda = 4;
  sim::SimConfig config;
  config.seed = 7;
  const auto result = sim::run(
      traffic, core::punctual::make_punctual_factory(p), config);
  util::SuccessCounter alarms;
  util::SuccessCounter periodic;
  for (const auto& job : result.jobs) {
    (job.window() == alarm_window ? alarms : periodic).add(job.success);
  }
  EXPECT_GE(periodic.rate(), 0.9);
  EXPECT_GE(alarms.rate(), 0.7);
}

TEST(Scenario, QosTiersFinishInPriorityOrder) {
  // The qos_priorities example as an assertion: smaller-window tiers
  // complete earlier *within the shared prefix* of the schedule.
  workload::Instance traffic = workload::gen_batch(10, 1 << 14, 0);
  traffic = workload::merge(traffic, workload::gen_batch(5, 1 << 12, 0));
  traffic = workload::merge(traffic, workload::gen_batch(3, 1 << 10, 0));

  core::Params p;
  p.lambda = 1;
  p.tau = 4;
  p.min_class = 10;
  sim::SimConfig config;
  config.seed = 11;
  const auto result =
      sim::run(traffic, core::aligned::make_aligned_factory(p), config);
  std::map<Slot, Slot> last_delivery;
  std::map<Slot, int> delivered;
  for (const auto& job : result.jobs) {
    ASSERT_TRUE(job.success) << "window " << job.window();
    last_delivery[job.window()] =
        std::max(last_delivery[job.window()], job.success_slot);
    ++delivered[job.window()];
  }
  EXPECT_EQ(delivered[1 << 10], 3);
  EXPECT_EQ(delivered[1 << 12], 5);
  EXPECT_EQ(delivered[1 << 14], 10);
  // Pecking order: the small tier's last delivery precedes the medium
  // tier's, which precedes the large tier's.
  EXPECT_LT(last_delivery[1 << 10], last_delivery[1 << 12]);
  EXPECT_LT(last_delivery[1 << 12], last_delivery[1 << 14]);
}

TEST(Scenario, MixedProtocolComparisonRanksEdfFirst) {
  // A feasible instance; the centralized EDF ceiling must weakly dominate
  // every distributed protocol.
  util::Rng rng(31);
  workload::GeneralConfig config;
  config.min_window = 1 << 9;
  config.max_window = 1 << 11;
  config.gamma = 1.0 / 16;
  config.fill = 0.8;
  config.horizon = 1 << 13;
  const auto instance = workload::gen_general(config, rng);
  ASSERT_FALSE(instance.empty());

  const auto edf = baselines::edf_schedule(instance);
  std::int64_t edf_ok = 0;
  for (const auto& r : edf) {
    edf_ok += r.success ? 1 : 0;
  }
  EXPECT_EQ(edf_ok, static_cast<std::int64_t>(instance.size()));

  core::Params p;
  p.lambda = 4;
  sim::SimConfig sc;
  sc.seed = 31;
  const auto punctual = sim::run(
      instance, core::punctual::make_punctual_factory(p), sc);
  EXPECT_LE(punctual.successes(), edf_ok);
}

TEST(Scenario, BurstyArrivalsAcrossWindowsAllAligned) {
  // Staggered batches across successive aligned windows, some overlapping
  // in the laminar hierarchy — the Figure 1 world at a larger scale.
  workload::Instance traffic;
  for (int i = 0; i < 4; ++i) {
    traffic = workload::merge(
        traffic, workload::gen_batch(5, 1 << 11, i * (1 << 11)));
  }
  traffic = workload::merge(traffic, workload::gen_batch(6, 1 << 13, 0));
  core::Params p;
  p.lambda = 1;
  p.tau = 4;
  p.min_class = 11;
  sim::SimConfig config;
  config.seed = 17;
  const auto result =
      sim::run(traffic, core::aligned::make_aligned_factory(p), config);
  EXPECT_EQ(result.successes(), 26);
}

TEST(Scenario, JammedIndustrialTrafficDegradesGracefully) {
  // Reactive jamming at the analyzed limit on the industrial scenario:
  // ALIGNED-backed periodic flows keep delivering.
  util::Rng rng(41);
  const auto flows = workload::gen_periodic_flows(
      8, 1 << 12, 1 << 13, 1.0 / 64, 0.8, rng);
  const auto traffic = workload::gen_periodic(flows, 1 << 15);
  if (traffic.empty()) {
    GTEST_SKIP();
  }
  // Periodic implicit-deadline flows have power-of-two windows but not
  // necessarily aligned releases; use PUNCTUAL.
  core::Params p;
  p.lambda = 4;
  sim::SimConfig config;
  config.seed = 41;
  const auto clean = sim::run(
      traffic, core::punctual::make_punctual_factory(p), config);
  const auto jammed = sim::run(
      traffic, core::punctual::make_punctual_factory(p), config,
      sim::make_reactive_jammer(0.5));
  EXPECT_GE(jammed.success_rate(), clean.success_rate() - 0.35);
  EXPECT_GE(jammed.success_rate(), 0.5);
}

}  // namespace
}  // namespace crmd
