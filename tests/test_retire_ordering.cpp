// Regression tests for the engine's O(1) retire bookkeeping (the
// live-position index introduced with the data-oriented slot engine,
// DESIGN.md §6e): a job that both wins the slot and reports done() in the
// same slot is retired exactly once, the live list never contains retired
// or duplicate ids, and the swap-remove order matches what protocols and
// metrics observed under the original O(live) std::find retire path.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "util/arena.hpp"

namespace crmd::sim {
namespace {

using test::instance_of;
using test::per_job_script_factory;
using test::script_factory;

/// Steps the simulation to completion, asserting the live-set invariants
/// after every slot: no duplicates, no retired ids resurfacing, and
/// `protocol()` agreeing with membership. Returns the result. (Jobs still
/// live when the horizon ends the run are never formally retired — that is
/// historical engine semantics — so the final live set is not required to
/// be empty.)
SimResult finish_checked(Simulation& sim) {
  std::set<JobId> ever_retired;
  std::vector<JobId> prev_live;
  while (true) {
    const bool more = sim.step();
    const std::vector<JobId> live = sim.live_jobs();
    std::set<JobId> seen;
    for (const JobId id : live) {
      EXPECT_TRUE(seen.insert(id).second)
          << "duplicate live id " << id << " at slot " << sim.now();
      EXPECT_EQ(ever_retired.count(id), 0u)
          << "retired id " << id << " resurfaced at slot " << sim.now();
      EXPECT_NE(sim.protocol(id), nullptr) << "live id " << id;
    }
    for (const JobId id : prev_live) {
      if (seen.count(id) == 0) {
        ever_retired.insert(id);
        EXPECT_EQ(sim.protocol(id), nullptr) << "retired id " << id;
      }
    }
    prev_live = live;
    if (!more) {
      break;
    }
  }
  return sim.finish();
}

// ScriptProtocol reports done() as soon as it succeeds, so the winner of a
// slot lands in the retire list twice conceptually: once from the success
// credit, once from the done() sweep. It must retire exactly once, with
// every counter counted once.
TEST(RetireOrdering, SuccessAndDoneSameSlotRetiresOnce) {
  auto instance = instance_of({{0, 10}});
  Simulation sim(instance, script_factory({3}), SimConfig{});
  const SimResult result = finish_checked(sim);
  ASSERT_EQ(result.jobs.size(), 1u);
  EXPECT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].success_slot, 3);
  // Live for slots 0..3 exactly once each — a double retire (or a missed
  // one) would distort this count.
  EXPECT_EQ(result.jobs[0].live_slots, 4);
  EXPECT_EQ(result.jobs[0].transmissions, 1);
  EXPECT_EQ(result.metrics.data_successes, 1);
}

// Many jobs hitting their deadline in the same slot exercises repeated
// swap-removal from the middle and the back of the live list.
TEST(RetireOrdering, MassDeadlineExpiryKeepsLiveListConsistent) {
  // Jobs 0..7 all expire at slot 8 (their script offset never fires);
  // jobs 8-9 live on until 20 and succeed in disjoint slots.
  std::vector<std::vector<Slot>> scripts;
  workload::Instance instance;
  for (int i = 0; i < 8; ++i) {
    instance.jobs.push_back(workload::JobSpec{0, 8});
    scripts.push_back({100});  // never fires
  }
  instance.jobs.push_back(workload::JobSpec{0, 20});
  instance.jobs.push_back(workload::JobSpec{0, 20});
  scripts.push_back({10});
  scripts.push_back({12});
  Simulation sim(instance, per_job_script_factory(scripts), SimConfig{});
  const SimResult result = finish_checked(sim);
  EXPECT_EQ(result.successes(), 2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(result.jobs[static_cast<std::size_t>(i)].success);
    // Live for exactly the 8 slots of their window — retired once, at the
    // deadline, not before or after.
    EXPECT_EQ(result.jobs[static_cast<std::size_t>(i)].live_slots, 8);
  }
}

// A winner retiring in the same slot as deadline expirations of *other*
// jobs: both retire paths run in one step() and must not interfere.
// Instances are normalized (sorted by release, then deadline), so the
// short-deadline jobs get ids 0-1 and the winner id 2.
TEST(RetireOrdering, WinnerAndExpiryInOneSlot) {
  // Jobs 0-1 expire in slot 5's deadline sweep; job 2 then transmits alone
  // in the very same slot and wins.
  auto instance = instance_of({{0, 5}, {0, 5}, {0, 10}});
  Simulation sim(instance,
                 per_job_script_factory({{100}, {100}, {5}}), SimConfig{});
  const SimResult result = finish_checked(sim);
  EXPECT_EQ(result.successes(), 1);
  EXPECT_TRUE(result.jobs[2].success);
  EXPECT_EQ(result.jobs[2].success_slot, 5);
  EXPECT_EQ(result.jobs[2].live_slots, 6);
  EXPECT_EQ(result.jobs[0].live_slots, 5);
  EXPECT_EQ(result.jobs[1].live_slots, 5);
}

// Heap-only (legacy ad-hoc lambda) factories take the non-arena ownership
// path through the same retire bookkeeping; the engine must destroy those
// protocols with `delete` exactly once (ASan would flag double-free or
// leak here).
TEST(RetireOrdering, HeapOnlyFactoryRetiresCleanly) {
  auto instance = instance_of({{0, 6}, {0, 6}});
  const ProtocolFactory heap_only =
      [](const JobInfo& /*info*/, util::Rng /*rng*/) {
        return std::make_unique<test::ScriptProtocol>(
            std::vector<Slot>{100});
      };
  EXPECT_FALSE(heap_only.arena_aware());
  Simulation sim(instance, heap_only, SimConfig{});
  const SimResult result = finish_checked(sim);
  EXPECT_EQ(result.successes(), 0);
}

// The registered factories construct protocols in the simulation's arena;
// spot-check the plumbing end to end (arena path chosen, results sane).
TEST(RetireOrdering, ArenaFactoryMatchesHeapPathResults) {
  const ProtocolFactory arena_factory(
      [](const JobInfo& /*info*/, util::Rng /*rng*/) {
        return std::make_unique<test::ScriptProtocol>(
            std::vector<Slot>{2});
      },
      [](const JobInfo& /*info*/, util::Rng /*rng*/,
         util::MonotonicArena& arena) -> Protocol* {
        return arena.create<test::ScriptProtocol>(std::vector<Slot>{2});
      });
  ASSERT_TRUE(arena_factory.arena_aware());
  const ProtocolFactory heap_only =
      [](const JobInfo& /*info*/, util::Rng /*rng*/) {
        return std::make_unique<test::ScriptProtocol>(
            std::vector<Slot>{2});
      };
  auto instance = instance_of({{0, 8}, {3, 11}, {6, 14}});
  SimConfig config;
  config.record_slots = true;
  const SimResult via_arena = run(instance, arena_factory, config);
  const SimResult via_heap = run(instance, heap_only, config);
  ASSERT_EQ(via_arena.jobs.size(), via_heap.jobs.size());
  for (std::size_t i = 0; i < via_arena.jobs.size(); ++i) {
    EXPECT_EQ(via_arena.jobs[i].success, via_heap.jobs[i].success);
    EXPECT_EQ(via_arena.jobs[i].success_slot, via_heap.jobs[i].success_slot);
    EXPECT_EQ(via_arena.jobs[i].live_slots, via_heap.jobs[i].live_slots);
    EXPECT_EQ(via_arena.jobs[i].transmissions,
              via_heap.jobs[i].transmissions);
  }
  EXPECT_EQ(via_arena.metrics.slots_simulated,
            via_heap.metrics.slots_simulated);
}

}  // namespace
}  // namespace crmd::sim
