// Tests for radio-energy accounting (DESIGN.md §6k): the simulator counts
// each job's transmissions, listening slots, and live slots; the sleep
// declaration is enforced by scrubbing perceived feedback; the aggregator
// rolls the per-job counters up; and the ENERGY_BEB slow-feedback-loop
// baseline spends O(1) awake slots per job.

#include <gtest/gtest.h>

#include <memory>

#include "analysis/outcomes.hpp"
#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/energy_beb.hpp"
#include "core/registry.hpp"
#include "core/uniform.hpp"
#include "sim/jammer.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd::sim {
namespace {

TEST(Energy, ScriptedJobCountsExactTransmissions) {
  auto instance = test::instance_of({{0, 20}});
  // Scripted attempts at offsets 3, 7, 11 — but success at 3 retires it.
  const auto result =
      run(instance, test::script_factory({3, 7, 11}), SimConfig{});
  ASSERT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].transmissions, 1);
  EXPECT_EQ(result.jobs[0].live_slots, 4);  // slots 0..3
}

TEST(Energy, FailedJobCountsAllAttempts) {
  auto instance = test::instance_of({{0, 20}, {0, 20}});
  // Both jobs transmit at the same offsets: all attempts collide.
  const auto result =
      run(instance, test::script_factory({2, 5}), SimConfig{});
  for (const auto& job : result.jobs) {
    EXPECT_FALSE(job.success);
    EXPECT_EQ(job.transmissions, 2);
  }
}

TEST(Energy, UniformUsesAtMostConfiguredAttempts) {
  core::Params params;
  params.uniform_attempts = 3;
  const auto instance = workload::gen_batch(10, 256, 0);
  SimConfig config;
  config.seed = 3;
  const auto result =
      run(instance, core::make_uniform_factory(params), config);
  for (const auto& job : result.jobs) {
    EXPECT_LE(job.transmissions, 3);
    EXPECT_GE(job.transmissions, 1);
  }
}

TEST(Energy, AlohaAccessCountMatchesProbabilityScale) {
  // A lone ALOHA job at p = 0.25 over a 4000-slot window transmits ~1000
  // times if it never succeeded — but it succeeds almost immediately; to
  // measure the rate, use two jobs that always collide... simpler: jam
  // everything so no success ever happens.
  const auto instance = workload::gen_batch(1, 4000, 0);
  SimConfig config;
  config.seed = 9;
  const auto result = run(instance, baselines::make_aloha_factory(0.25),
                          config, make_blanket_jammer(1.0));
  EXPECT_FALSE(result.jobs[0].success);
  EXPECT_NEAR(static_cast<double>(result.jobs[0].transmissions), 1000.0,
              120.0);
  EXPECT_EQ(result.jobs[0].live_slots, 4000);
}

TEST(Energy, AggregatorRollsUpAccesses) {
  analysis::OutcomeAggregator agg;
  JobResult a;
  a.release = 0;
  a.deadline = 64;
  a.transmissions = 4;
  JobResult b;
  b.release = 0;
  b.deadline = 64;
  b.transmissions = 10;
  agg.add_job(a);
  agg.add_job(b);
  EXPECT_DOUBLE_EQ(agg.accesses().mean(), 7.0);
  EXPECT_DOUBLE_EQ(agg.by_window().at(64).accesses.mean(), 7.0);
}

// ---------------------------------------------------------------------------
// Radio-state accounting and sleep enforcement (DESIGN.md §6k)
// ---------------------------------------------------------------------------

// A protocol that declares sleep every slot but records every non-silence
// outcome it perceives. Honest sleepers hear nothing; the simulator must
// make that true even for liars by scrubbing their perceived feedback.
class SleepEavesdropper final : public Protocol {
 public:
  explicit SleepEavesdropper(std::shared_ptr<int> heard, bool declare_sleep)
      : heard_(std::move(heard)), declare_sleep_(declare_sleep) {}

  void on_activate(const JobInfo& /*info*/) override {}
  SlotAction on_slot(const SlotView& /*view*/) override {
    SlotAction action;
    action.sleep = declare_sleep_;
    return action;
  }
  void on_feedback(const SlotView& /*view*/,
                   const SlotFeedback& fb) override {
    if (fb.outcome != SlotOutcome::kSilence) {
      ++*heard_;
    }
  }
  [[nodiscard]] bool done() const override { return false; }

 private:
  std::shared_ptr<int> heard_;
  bool declare_sleep_;
};

// Job 0 transmits (and succeeds) at offset 3; job 1 is the eavesdropper.
// With sleep declared, the success is scrubbed to silence before job 1's
// on_feedback; without it, job 1 hears the success. Same channel, same
// slots — the only difference is the declaration, so the scrub (not luck)
// is what keeps sleepers deaf.
TEST(Energy, SleepScrubsPerceivedFeedback) {
  for (const bool declare_sleep : {true, false}) {
    auto heard = std::make_shared<int>(0);
    auto factory = [&](const JobInfo& info,
                       util::Rng /*rng*/) -> std::unique_ptr<Protocol> {
      if (info.id == 0) {
        return std::make_unique<test::ScriptProtocol>(std::vector<Slot>{3});
      }
      return std::make_unique<SleepEavesdropper>(heard, declare_sleep);
    };
    const auto result =
        run(test::instance_of({{0, 20}, {0, 20}}), factory, SimConfig{});
    ASSERT_TRUE(result.jobs[0].success);
    if (declare_sleep) {
      EXPECT_EQ(*heard, 0) << "a declared sleeper overheard the channel";
      EXPECT_EQ(result.jobs[1].listen_slots, 0);
      EXPECT_EQ(result.jobs[1].awake_slots(), 0);
    } else {
      EXPECT_GE(*heard, 1) << "an awake listener must hear the success";
      EXPECT_EQ(result.jobs[1].listen_slots, result.jobs[1].live_slots);
    }
  }
}

TEST(Energy, AwakeSplitsIntoListeningPlusTransmitting) {
  // One scripted transmitter (always-listening otherwise) next to a
  // sleeper: the aggregate identity and the per-job split must agree.
  const auto result = run(test::instance_of({{0, 16}}),
                          test::script_factory({2, 5, 9}), SimConfig{});
  const SimMetrics& m = result.metrics;
  EXPECT_EQ(m.slots_awake, m.slots_listening + m.slots_transmitting);
  EXPECT_EQ(m.live_job_slots - m.dark_job_slots, m.slots_awake);
  std::int64_t tx = 0;
  std::int64_t listen = 0;
  for (const auto& job : result.jobs) {
    tx += job.transmissions;
    listen += job.listen_slots;
  }
  EXPECT_EQ(tx, m.slots_transmitting);
  EXPECT_EQ(listen, m.slots_listening);
}

TEST(Energy, SleepDeclaringBaselinesNeverListen) {
  // UNIFORM, BEB, ALOHA declare sleep on every non-attempt slot, so their
  // entire awake budget is transmissions (ternary channel, no carrier
  // sampling anywhere).
  const auto instance = workload::gen_batch(32, 512, 0);
  SimConfig config;
  config.seed = 11;
  core::Params params;
  const sim::ProtocolFactory factories[] = {
      core::make_uniform_factory(params),
      baselines::make_beb_factory(),
      baselines::make_aloha_window_factory(4.0),
      baselines::make_energy_beb_factory(params),
  };
  for (const auto& factory : factories) {
    const auto result = run(instance, factory, config);
    EXPECT_EQ(result.metrics.slots_listening, 0);
    EXPECT_EQ(result.metrics.slots_awake, result.metrics.slots_transmitting);
    for (const auto& job : result.jobs) {
      EXPECT_EQ(job.listen_slots, 0);
      EXPECT_EQ(job.awake_slots(), job.transmissions);
    }
  }
}

TEST(Energy, AlwaysListeningProtocolsPayTheirWholeLifetime) {
  // ALIGNED and PUNCTUAL never declare sleep — their coordination needs
  // the channel every slot — so awake ≡ live − dark, per job and in
  // aggregate. The catalog advertises exactly this contrast.
  for (const auto& info : core::protocol_catalog()) {
    if (info.name == std::string("aligned") ||
        info.name == std::string("punctual")) {
      EXPECT_TRUE(info.always_listening) << info.name;
    } else {
      EXPECT_FALSE(info.always_listening) << info.name;
    }
  }
  core::Params params;
  params.min_class = 6;
  const auto instance = workload::gen_batch(16, 1 << 6, 0);
  SimConfig config;
  config.seed = 5;
  const auto result = run(
      instance, core::make_protocol("punctual", params).value(), config);
  const SimMetrics& m = result.metrics;
  EXPECT_EQ(m.slots_awake, m.live_job_slots - m.dark_job_slots);
  for (const auto& job : result.jobs) {
    EXPECT_EQ(job.awake_slots(), job.live_slots - job.dark_slots);
  }
}

// ---------------------------------------------------------------------------
// ENERGY_BEB: the slow-feedback-loop baseline
// ---------------------------------------------------------------------------

TEST(Energy, EnergyBebLoneJobWakesOnce) {
  core::Params params;
  const auto result = run(workload::gen_batch(1, 1024, 0),
                          baselines::make_energy_beb_factory(params),
                          SimConfig{});
  ASSERT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].transmissions, 1);
  EXPECT_EQ(result.jobs[0].awake_slots(), 1);
}

TEST(Energy, EnergyBebGivesUpInsteadOfThrashing) {
  // Blanket-jam every slot: the job can never succeed. BEB would retry
  // ~log2(window) times; ENERGY_BEB's doubling spreads overrun the deadline
  // after a handful of draws and the job sleeps out its window. The awake
  // budget must stay far below the window for every seed.
  core::Params params;
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    SimConfig config;
    config.seed = seed;
    const auto result = run(workload::gen_batch(1, 4096, 0),
                            baselines::make_energy_beb_factory(params),
                            config, make_blanket_jammer(1.0));
    EXPECT_FALSE(result.jobs[0].success);
    EXPECT_EQ(result.jobs[0].live_slots, 4096);
    EXPECT_LE(result.jobs[0].awake_slots(), 24) << "seed " << seed;
  }
}

TEST(Energy, EnergyBebCarrierSenseListensOncePerFailure) {
  // With the carrier sample enabled on a listener-visible channel, every
  // failure is followed by exactly one listening slot (the last failure's
  // sample can fall past the horizon, so listen ≤ failures).
  core::Params params;
  params.energy_listen_after_failure = true;
  SimConfig config;
  config.seed = 3;
  const auto jammed = run(workload::gen_batch(4, 2048, 0),
                          baselines::make_energy_beb_factory(params),
                          config, make_blanket_jammer(1.0));
  std::int64_t listens = 0;
  std::int64_t failures = 0;
  for (const auto& job : jammed.jobs) {
    EXPECT_FALSE(job.success);
    listens += job.listen_slots;
    failures += job.transmissions;  // every attempt failed
  }
  EXPECT_GE(listens, 1);
  EXPECT_LE(listens, failures);

  // Under binary_ack listeners are deaf, so the sample is suppressed and
  // the whole awake budget is transmissions again.
  config.feedback = FeedbackModel::binary_ack();
  const auto deaf = run(workload::gen_batch(4, 2048, 0),
                        baselines::make_energy_beb_factory(params),
                        config, make_blanket_jammer(1.0));
  EXPECT_EQ(deaf.metrics.slots_listening, 0);
}

TEST(Energy, EnergyBebDutyCyclesAboveFracOne) {
  // energy_spread_frac > 1 spreads even first attempts past the deadline:
  // a measurable fraction of jobs never wakes at all, the deliberate
  // duty-cycling end of the Pareto knob.
  core::Params params;
  params.energy_spread_frac = 2.0;
  SimConfig config;
  config.seed = 7;
  const auto result = run(workload::gen_batch(256, 1024, 0),
                          baselines::make_energy_beb_factory(params),
                          config);
  int never_woke = 0;
  for (const auto& job : result.jobs) {
    if (job.awake_slots() == 0) {
      ++never_woke;
    }
  }
  // Each first draw lands past the deadline with probability 1/2; with 256
  // jobs the count concentrates hard around 128.
  EXPECT_GE(never_woke, 64);
  EXPECT_LE(never_woke, 192);
}

TEST(Energy, EnergyBebRejectsBadSpreadFrac) {
  core::Params params;
  params.energy_spread_frac = 0.0;
  EXPECT_THROW(baselines::make_energy_beb_factory(params),
               std::invalid_argument);
  params.energy_spread_frac = 9.0;
  EXPECT_THROW(baselines::make_energy_beb_factory(params),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine invariance: the meter must not notice HOW slots were covered
// ---------------------------------------------------------------------------

TEST(Energy, CountersAreFastForwardInvariant) {
  // The §6k contract: a dormant span is exactly a sleep span, so skipping
  // it batch-accounts the same counters slot-by-slot simulation tallies.
  core::Params params;
  for (const double frac : {0.5, 2.0}) {
    params.energy_spread_frac = frac;
    const auto factory = baselines::make_energy_beb_factory(params);
    SimMetrics reference;
    bool first = true;
    for (const auto ff :
         {FastForward::kOff, FastForward::kOn, FastForward::kValidate}) {
      SimConfig config;
      config.seed = 13;
      config.fast_forward = ff;
      const auto result =
          run(workload::gen_batch(64, 2048, 0), factory, config);
      if (first) {
        reference = result.metrics;
        first = false;
        continue;
      }
      EXPECT_EQ(result.metrics.slots_awake, reference.slots_awake);
      EXPECT_EQ(result.metrics.slots_listening, reference.slots_listening);
      EXPECT_EQ(result.metrics.slots_transmitting,
                reference.slots_transmitting);
      EXPECT_EQ(result.metrics.live_job_slots, reference.live_job_slots);
    }
  }
}

TEST(Energy, IdentityHoldsAcrossRegistryAndChannels) {
  // Property sweep: for every catalog protocol on a contended batch, the
  // radio states partition awake time and awake time partitions live time.
  core::Params params;
  params.min_class = 8;
  for (const auto& name : core::protocol_names()) {
    SimConfig config;
    config.seed = 17;
    const auto result = run(workload::gen_batch(64, 1 << 8, 0),
                            core::make_protocol(name, params).value(), config);
    const SimMetrics& m = result.metrics;
    EXPECT_EQ(m.slots_awake, m.slots_listening + m.slots_transmitting)
        << name;
    EXPECT_LE(m.slots_awake, m.live_job_slots - m.dark_job_slots) << name;
    std::int64_t tx = 0;
    std::int64_t listen = 0;
    for (const auto& job : result.jobs) {
      EXPECT_LE(job.awake_slots(), job.live_slots - job.dark_slots) << name;
      tx += job.transmissions;
      listen += job.listen_slots;
    }
    EXPECT_EQ(tx, m.slots_transmitting) << name;
    EXPECT_EQ(listen, m.slots_listening) << name;
  }
}

}  // namespace
}  // namespace crmd::sim
