// Tests for per-job channel-access accounting (the energy metric): the
// simulator counts each job's transmissions and live slots; the aggregator
// rolls them up.

#include <gtest/gtest.h>

#include "analysis/outcomes.hpp"
#include "baselines/aloha.hpp"
#include "core/uniform.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd::sim {
namespace {

TEST(Energy, ScriptedJobCountsExactTransmissions) {
  auto instance = test::instance_of({{0, 20}});
  // Scripted attempts at offsets 3, 7, 11 — but success at 3 retires it.
  const auto result =
      run(instance, test::script_factory({3, 7, 11}), SimConfig{});
  ASSERT_TRUE(result.jobs[0].success);
  EXPECT_EQ(result.jobs[0].transmissions, 1);
  EXPECT_EQ(result.jobs[0].live_slots, 4);  // slots 0..3
}

TEST(Energy, FailedJobCountsAllAttempts) {
  auto instance = test::instance_of({{0, 20}, {0, 20}});
  // Both jobs transmit at the same offsets: all attempts collide.
  const auto result =
      run(instance, test::script_factory({2, 5}), SimConfig{});
  for (const auto& job : result.jobs) {
    EXPECT_FALSE(job.success);
    EXPECT_EQ(job.transmissions, 2);
  }
}

TEST(Energy, UniformUsesAtMostConfiguredAttempts) {
  core::Params params;
  params.uniform_attempts = 3;
  const auto instance = workload::gen_batch(10, 256, 0);
  SimConfig config;
  config.seed = 3;
  const auto result =
      run(instance, core::make_uniform_factory(params), config);
  for (const auto& job : result.jobs) {
    EXPECT_LE(job.transmissions, 3);
    EXPECT_GE(job.transmissions, 1);
  }
}

TEST(Energy, AlohaAccessCountMatchesProbabilityScale) {
  // A lone ALOHA job at p = 0.25 over a 4000-slot window transmits ~1000
  // times if it never succeeded — but it succeeds almost immediately; to
  // measure the rate, use two jobs that always collide... simpler: jam
  // everything so no success ever happens.
  const auto instance = workload::gen_batch(1, 4000, 0);
  SimConfig config;
  config.seed = 9;
  const auto result = run(instance, baselines::make_aloha_factory(0.25),
                          config, make_blanket_jammer(1.0));
  EXPECT_FALSE(result.jobs[0].success);
  EXPECT_NEAR(static_cast<double>(result.jobs[0].transmissions), 1000.0,
              120.0);
  EXPECT_EQ(result.jobs[0].live_slots, 4000);
}

TEST(Energy, AggregatorRollsUpAccesses) {
  analysis::OutcomeAggregator agg;
  JobResult a;
  a.release = 0;
  a.deadline = 64;
  a.transmissions = 4;
  JobResult b;
  b.release = 0;
  b.deadline = 64;
  b.transmissions = 10;
  agg.add_job(a);
  agg.add_job(b);
  EXPECT_DOUBLE_EQ(agg.accesses().mean(), 7.0);
  EXPECT_DOUBLE_EQ(agg.by_window().at(64).accesses.mean(), 7.0);
}

}  // namespace
}  // namespace crmd::sim
