// Tests for the baseline protocols: BEB, sawtooth, ALOHA, and the
// centralized EDF reference scheduler.

#include <gtest/gtest.h>

#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "baselines/edf.hpp"
#include "baselines/sawtooth.hpp"
#include "sim/simulator.hpp"
#include "workload/feasibility.hpp"
#include "workload/generators.hpp"

namespace crmd::baselines {
namespace {

TEST(Beb, LoneJobSucceedsQuickly) {
  const auto instance = workload::gen_batch(1, 256, 0);
  sim::SimConfig config;
  config.seed = 1;
  const auto result =
      sim::run(instance, make_beb_factory(BebConfig{8, 1 << 12}), config);
  ASSERT_EQ(result.successes(), 1);
  EXPECT_LT(result.jobs[0].success_slot, 8) << "first attempt lands in the "
                                               "initial window";
}

TEST(Beb, BatchEventuallyDrains) {
  const auto instance = workload::gen_batch(16, 1 << 13, 0);
  sim::SimConfig config;
  config.seed = 3;
  const auto result = sim::run(instance, make_beb_factory(), config);
  EXPECT_GE(result.success_rate(), 0.9);
}

TEST(Beb, WindowDoublesOnCollision) {
  // Two jobs with the same rng would collide; instead verify the failure
  // counter moves via a crafted pair that always collides initially.
  const auto instance = workload::gen_batch(2, 1 << 10, 0);
  sim::SimConfig config;
  config.seed = 7;
  sim::Simulation sim(instance, make_beb_factory(BebConfig{1, 1 << 8}),
                      config);
  // cw_min=1 forces both jobs to attempt slot 0 -> guaranteed collision.
  sim.step();
  auto* a = dynamic_cast<BebProtocol*>(sim.protocol(0));
  auto* b = dynamic_cast<BebProtocol*>(sim.protocol(1));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->failures(), 1);
  EXPECT_EQ(b->failures(), 1);
  const auto result = sim.finish();
  EXPECT_EQ(result.successes(), 2) << "backoff separates them eventually";
}

TEST(Beb, IgnoresDeadlines) {
  // BEB has no deadline awareness: an overloaded short window leaves many
  // jobs undelivered.
  const auto instance = workload::gen_batch(64, 128, 0);
  sim::SimConfig config;
  config.seed = 9;
  const auto result = sim::run(instance, make_beb_factory(), config);
  EXPECT_LT(result.success_rate(), 0.9);
}

TEST(Sawtooth, PhasesSweepDown) {
  SawtoothProtocol proto(util::Rng(1));
  sim::JobInfo info;
  info.id = 0;
  info.release = 0;
  info.deadline = 1 << 20;
  proto.on_activate(info);
  EXPECT_EQ(proto.epoch(), 1);
  EXPECT_EQ(proto.phase(), 1);

  // Drive silent slots; epochs sweep phase i..1 with 2^j slots per phase.
  sim::SlotView view{0, 0};
  sim::SlotFeedback silent;
  // Epoch 1: phase 1, 2 slots. Then epoch 2: phases 2 (4 slots), 1 (2).
  for (int s = 0; s < 2; ++s) {
    (void)proto.on_slot(view);
    proto.on_feedback(view, silent);
  }
  EXPECT_EQ(proto.epoch(), 2);
  EXPECT_EQ(proto.phase(), 2);
  for (int s = 0; s < 4; ++s) {
    (void)proto.on_slot(view);
    proto.on_feedback(view, silent);
  }
  EXPECT_EQ(proto.epoch(), 2);
  EXPECT_EQ(proto.phase(), 1);
}

TEST(Sawtooth, BatchDrains) {
  const auto instance = workload::gen_batch(32, 1 << 12, 0);
  sim::SimConfig config;
  config.seed = 11;
  const auto result = sim::run(instance, make_sawtooth_factory(), config);
  EXPECT_GE(result.success_rate(), 0.9);
}

TEST(Aloha, FixedProbabilityLoneJob) {
  const auto instance = workload::gen_batch(1, 512, 0);
  sim::SimConfig config;
  config.seed = 13;
  const auto result = sim::run(instance, make_aloha_factory(0.1), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(Aloha, WindowScaledFactoryCapsAtHalf) {
  const auto instance = workload::gen_batch(1, 4, 0);
  sim::SimConfig config;
  config.seed = 17;
  // scale/window = 16/4 = 4 -> capped at 0.5; job transmits ~ every other
  // slot and succeeds alone.
  const auto result =
      sim::run(instance, make_aloha_window_factory(16.0), config);
  EXPECT_EQ(result.successes(), 1);
}

TEST(Edf, DeliversEverythingOnFeasibleInstances) {
  util::Rng rng(19);
  workload::GeneralConfig config;
  config.min_window = 1 << 6;
  config.max_window = 1 << 9;
  config.gamma = 1.0 / 4;
  config.horizon = 1 << 12;
  for (int rep = 0; rep < 5; ++rep) {
    const auto instance = workload::gen_general(config, rng);
    ASSERT_TRUE(workload::edf_feasible(instance, 1));
    EXPECT_EQ(edf_successes(instance),
              static_cast<std::int64_t>(instance.size()));
  }
}

TEST(Edf, PrefersEarlierDeadlines) {
  workload::Instance inst;
  inst.jobs = {{0, 2}, {0, 10}};
  const auto results = edf_schedule(inst);
  ASSERT_EQ(results.size(), 2u);
  // Job with deadline 2 (id 0 after normalize) transmits first.
  EXPECT_TRUE(results[0].success);
  EXPECT_EQ(results[0].success_slot, 0);
  EXPECT_TRUE(results[1].success);
  EXPECT_EQ(results[1].success_slot, 1);
}

TEST(Edf, DropsOnlyWhatMustBeDropped) {
  // Three jobs fighting for two slots: exactly one is dropped.
  workload::Instance inst;
  inst.jobs = {{0, 2}, {0, 2}, {0, 2}};
  const auto results = edf_schedule(inst);
  int delivered = 0;
  for (const auto& r : results) {
    delivered += r.success ? 1 : 0;
  }
  EXPECT_EQ(delivered, 2);
}

TEST(Edf, IdleGapsAreSkipped) {
  workload::Instance inst;
  inst.jobs = {{0, 4}, {1000, 1004}};
  const auto results = edf_schedule(inst);
  EXPECT_TRUE(results[0].success);
  EXPECT_TRUE(results[1].success);
  EXPECT_EQ(results[1].success_slot, 1000);
}

TEST(Edf, EmptyInstance) {
  EXPECT_TRUE(edf_schedule(workload::Instance{}).empty());
  EXPECT_EQ(edf_successes(workload::Instance{}), 0);
}

}  // namespace
}  // namespace crmd::baselines
