// Tests for the name-based protocol registry.

#include <gtest/gtest.h>

#include "core/registry.hpp"
#include "sim/simulator.hpp"
#include "workload/generators.hpp"

namespace crmd::core {
namespace {

TEST(Registry, ListsAllProtocols) {
  const auto names = protocol_names();
  EXPECT_EQ(names.size(), 9u);
  for (const auto& name : names) {
    EXPECT_TRUE(is_protocol(name)) << name;
  }
  EXPECT_FALSE(is_protocol("bogus"));
  EXPECT_FALSE(is_protocol(""));
  EXPECT_FALSE(is_protocol("ALIGNED")) << "names are case-sensitive";
}

TEST(Registry, UnknownNameReturnsNullopt) {
  EXPECT_FALSE(make_protocol("nope", Params{}).has_value());
}

TEST(Registry, EveryProtocolRunsOnAnAlignedBatch) {
  // Aligned windows satisfy every protocol's contract (ALIGNED requires
  // them; the rest don't care).
  Params params;
  params.lambda = 2;
  params.tau = 4;
  params.min_class = 12;
  const auto instance = workload::gen_batch(4, 1 << 12, 0);
  for (const auto& name : protocol_names()) {
    const auto factory = make_protocol(name, params);
    ASSERT_TRUE(factory.has_value()) << name;
    sim::SimConfig config;
    config.seed = 5;
    const auto result = sim::run(instance, *factory, config);
    EXPECT_EQ(result.jobs.size(), 4u) << name;
    EXPECT_GE(result.successes(), 1) << name;
  }
}

TEST(Registry, InvalidParamsRejectedForCoreProtocols) {
  Params bad;
  bad.lambda = 0;
  for (const auto& name :
       {"uniform", "aligned", "punctual", "nocd", "nocd_robust"}) {
    EXPECT_THROW((void)make_protocol(name, bad), std::invalid_argument)
        << name;
  }
}

TEST(Registry, NocdFamilyAdvertisesNoCdNative) {
  for (const auto& name : {"nocd", "nocd_robust"}) {
    const auto info = protocol_info(name);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_TRUE(info->no_cd_native) << name;
    EXPECT_FALSE(info->needs_collision_detection) << name;
    EXPECT_TRUE(info->uses_listener_feedback) << name;
    // Full logic runs on every rung of the degradation ladder.
    for (const auto& spec :
         {"ternary", "binary_ack", "collision_as_silence", "noisy"}) {
      const auto model = sim::parse_feedback_model(spec);
      ASSERT_TRUE(model.has_value()) << spec;
      EXPECT_TRUE(info->supports(model->caps())) << name << " on " << spec;
    }
  }
  // The ternary-native protocols never claim the flag.
  for (const auto& name : {"uniform", "aligned", "punctual", "beb"}) {
    const auto info = protocol_info(name);
    ASSERT_TRUE(info.has_value()) << name;
    EXPECT_FALSE(info->no_cd_native) << name;
  }
}

}  // namespace
}  // namespace crmd::core
