// The determinism contract of the parallel replication engine: for every
// worker count, run_replications returns a ReplicationReport bit-identical
// to the serial run — outcomes, channel metrics, jobs-per-rep statistics,
// and (when tracing) the event stream the sinks observe. Exercised across
// protocols (UNIFORM / ALIGNED / PUNCTUAL and baselines), jamming
// adversaries, non-trivial fault plans, and a many-replication stress
// case. A failure here means replication-order dependence leaked into the
// engine (shared RNG stream, out-of-order fold, racy accumulator).

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <vector>

#include "analysis/runner.hpp"
#include "baselines/aloha.hpp"
#include "baselines/beb.hpp"
#include "core/aligned/protocol.hpp"
#include "core/punctual/protocol.hpp"
#include "core/uniform.hpp"
#include "obs/trace.hpp"
#include "sim/jammer.hpp"
#include "workload/generators.hpp"

namespace crmd::analysis {
namespace {

// Worker counts the contract is asserted for (1 is the serial reference).
const std::vector<int> kThreadCounts{2, 3, 8};

void expect_stats_identical(const util::RunningStats& a,
                            const util::RunningStats& b, const char* what) {
  EXPECT_EQ(a.count(), b.count()) << what << ".count";
  EXPECT_EQ(a.mean(), b.mean()) << what << ".mean";
  EXPECT_EQ(a.variance(), b.variance()) << what << ".variance";
  EXPECT_EQ(a.min(), b.min()) << what << ".min";
  EXPECT_EQ(a.max(), b.max()) << what << ".max";
}

void expect_counter_identical(const util::SuccessCounter& a,
                              const util::SuccessCounter& b,
                              const char* what) {
  EXPECT_EQ(a.successes(), b.successes()) << what << ".successes";
  EXPECT_EQ(a.trials(), b.trials()) << what << ".trials";
}

void expect_metrics_identical(const sim::SimMetrics& a,
                              const sim::SimMetrics& b) {
  EXPECT_EQ(a.slots_simulated, b.slots_simulated);
  EXPECT_EQ(a.slots_skipped, b.slots_skipped);
  EXPECT_EQ(a.silent_slots, b.silent_slots);
  EXPECT_EQ(a.success_slots, b.success_slots);
  EXPECT_EQ(a.noise_slots, b.noise_slots);
  EXPECT_EQ(a.jammed_slots, b.jammed_slots);
  EXPECT_EQ(a.data_successes, b.data_successes);
  EXPECT_EQ(a.control_successes, b.control_successes);
  EXPECT_EQ(a.start_successes, b.start_successes);
  EXPECT_EQ(a.claim_successes, b.claim_successes);
  EXPECT_EQ(a.timekeeper_successes, b.timekeeper_successes);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.feedback_corruptions, b.feedback_corruptions);
  EXPECT_EQ(a.feedback_losses, b.feedback_losses);
  EXPECT_EQ(a.clock_skew_events, b.clock_skew_events);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.dark_job_slots, b.dark_job_slots);
  expect_stats_identical(a.contention, b.contention, "channel.contention");
}

void expect_reports_identical(const ReplicationReport& a,
                              const ReplicationReport& b) {
  EXPECT_EQ(a.replications, b.replications);
  expect_stats_identical(a.jobs_per_rep, b.jobs_per_rep, "jobs_per_rep");
  expect_metrics_identical(a.channel, b.channel);

  expect_counter_identical(a.outcomes.overall(), b.outcomes.overall(),
                           "outcomes.overall");
  EXPECT_EQ(a.outcomes.jobs(), b.outcomes.jobs());
  expect_stats_identical(a.outcomes.accesses(), b.outcomes.accesses(),
                         "outcomes.accesses");
  ASSERT_EQ(a.outcomes.by_window().size(), b.outcomes.by_window().size());
  auto ita = a.outcomes.by_window().begin();
  auto itb = b.outcomes.by_window().begin();
  for (; ita != a.outcomes.by_window().end(); ++ita, ++itb) {
    EXPECT_EQ(ita->first, itb->first) << "window keys diverge";
    expect_counter_identical(ita->second.deadline_met,
                             itb->second.deadline_met, "bucket.deadline_met");
    expect_stats_identical(ita->second.latency, itb->second.latency,
                           "bucket.latency");
    expect_stats_identical(ita->second.accesses, itb->second.accesses,
                           "bucket.accesses");
  }
}

/// Asserts the contract for one configuration: every parallel worker count
/// reproduces the serial report bit for bit.
void assert_contract(const InstanceGen& gen,
                     const sim::ProtocolFactory& factory, int reps,
                     std::uint64_t seed, const JammerGen& jammer_gen = nullptr,
                     const sim::FaultPlan& faults = {}) {
  const auto serial = run_replications(gen, factory, reps, seed, jammer_gen,
                                       faults, nullptr, 1);
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const auto parallel = run_replications(gen, factory, reps, seed,
                                           jammer_gen, faults, nullptr,
                                           threads);
    expect_reports_identical(serial, parallel);
  }
}

InstanceGen general_gen(double gamma = 1.0 / 8) {
  return [gamma](util::Rng& rng) {
    workload::GeneralConfig config;
    config.min_window = 1 << 8;
    config.max_window = 1 << 10;
    config.gamma = gamma;
    config.horizon = 1 << 12;
    return workload::gen_general(config, rng);
  };
}

InstanceGen aligned_gen() {
  return [](util::Rng& rng) {
    workload::AlignedConfig config;
    config.min_class = 8;
    config.max_class = 10;
    config.gamma = 1.0 / 8;
    config.horizon = 1 << 12;
    return workload::gen_aligned(config, rng);
  };
}

TEST(RunnerParallel, ResolveThreads) {
  EXPECT_EQ(resolve_threads(1), 1);
  EXPECT_EQ(resolve_threads(7), 7);
  EXPECT_GE(resolve_threads(0), 1);   // hardware default
  EXPECT_GE(resolve_threads(-3), 1);  // negative = auto too
}

TEST(RunnerParallel, UniformBitIdentity) {
  core::Params params;
  assert_contract(general_gen(), core::make_uniform_factory(params),
                  /*reps=*/6, /*seed=*/101);
}

TEST(RunnerParallel, AlignedBitIdentity) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  assert_contract(aligned_gen(),
                  core::aligned::make_aligned_factory(params),
                  /*reps=*/5, /*seed=*/202);
}

TEST(RunnerParallel, PunctualBitIdentity) {
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  assert_contract(general_gen(),
                  core::punctual::make_punctual_factory(params),
                  /*reps=*/5, /*seed=*/303);
}

TEST(RunnerParallel, BaselinesBitIdentity) {
  assert_contract(general_gen(), baselines::make_aloha_window_factory(4.0),
                  /*reps=*/6, /*seed=*/404);
  assert_contract(general_gen(), baselines::make_beb_factory(),
                  /*reps=*/6, /*seed=*/405);
}

TEST(RunnerParallel, JammerGensBitIdentity) {
  const JammerGen reactive = [](util::Rng) {
    return sim::make_reactive_jammer(0.3);
  };
  assert_contract(general_gen(), baselines::make_aloha_window_factory(4.0),
                  /*reps=*/6, /*seed=*/506, reactive);
  const JammerGen blanket = [](util::Rng) {
    return sim::make_blanket_jammer(0.2);
  };
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  assert_contract(general_gen(),
                  core::punctual::make_punctual_factory(params),
                  /*reps=*/4, /*seed=*/507, blanket);
}

TEST(RunnerParallel, FaultPlanBitIdentity) {
  sim::FaultPlan faults;
  faults.feedback_corrupt_rate = 0.05;
  faults.feedback_loss_rate = 0.05;
  faults.clock_skew_rate = 0.01;
  faults.crash_rate = 0.002;
  faults.crash_permanent_frac = 0.5;
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  assert_contract(general_gen(),
                  core::punctual::make_punctual_factory(params),
                  /*reps=*/4, /*seed=*/608, nullptr, faults);
}

TEST(RunnerParallel, EmptyInstancesFoldInOrder) {
  // Roughly half the replications generate nothing — the fold must still
  // walk replication order (jobs_per_rep mixes zero and non-zero adds).
  const InstanceGen gen = [](util::Rng& rng) {
    if (rng.bernoulli(0.5)) {
      return workload::Instance{};
    }
    return workload::gen_batch(8, 512, 0);
  };
  assert_contract(gen, baselines::make_aloha_window_factory(4.0),
                  /*reps=*/12, /*seed=*/709);
}

TEST(RunnerParallel, ManyRepsStress) {
  // Far more replications than workers: exercises the atomic claim counter
  // and the pending-map fold under real contention.
  const InstanceGen gen = [](util::Rng&) {
    return workload::gen_batch(4, 256, 0);
  };
  const auto serial = run_replications(
      gen, baselines::make_aloha_window_factory(4.0), 200, 811, nullptr, {},
      nullptr, 1);
  const auto parallel = run_replications(
      gen, baselines::make_aloha_window_factory(4.0), 200, 811, nullptr, {},
      nullptr, 8);
  expect_reports_identical(serial, parallel);
}

TEST(RunnerParallel, MoreWorkersThanRepsIsFine) {
  assert_contract(general_gen(), baselines::make_aloha_window_factory(4.0),
                  /*reps=*/2, /*seed=*/912);
}

TEST(RunnerParallel, TracedStreamsAreIdentical) {
  // With a tracer attached, parallel workers buffer per-replication events
  // and replay them at fold time — sinks must observe the byte-identical
  // stream (same events, same order, same seq stamps) as a serial run.
  core::Params params;
  params.lambda = 2;
  params.tau = 8;
  params.min_class = 8;
  const auto factory = core::punctual::make_punctual_factory(params);
  const auto gen = general_gen();

  const auto collect = [&](int threads) {
    obs::Tracer tracer;
    auto sink = std::make_shared<obs::CollectSink>();
    tracer.add_sink(sink);
    const auto report =
        run_replications(gen, factory, 3, 1013, nullptr, {}, &tracer,
                         threads);
    tracer.close();
    EXPECT_EQ(report.replications, 3);
    return sink->events();
  };

  const std::vector<obs::TraceEvent> serial = collect(1);
  ASSERT_FALSE(serial.empty());
  for (const int threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const std::vector<obs::TraceEvent> parallel = collect(threads);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      const obs::TraceEvent& a = serial[i];
      const obs::TraceEvent& b = parallel[i];
      EXPECT_EQ(a.seq, b.seq) << "event " << i;
      EXPECT_EQ(a.slot, b.slot) << "event " << i;
      EXPECT_EQ(a.kind, b.kind) << "event " << i;
      EXPECT_EQ(a.job, b.job) << "event " << i;
      EXPECT_EQ(a.a, b.a) << "event " << i;
      EXPECT_EQ(a.b, b.b) << "event " << i;
      EXPECT_EQ(a.x, b.x) << "event " << i;
      if (a.label == nullptr || b.label == nullptr) {
        EXPECT_EQ(a.label, b.label) << "event " << i;
      } else {
        EXPECT_STREQ(a.label, b.label) << "event " << i;
      }
    }
  }
}

TEST(RunnerParallel, GeneratorExceptionsPropagate) {
  const InstanceGen gen = [](util::Rng&) -> workload::Instance {
    throw std::runtime_error("generator failure");
  };
  EXPECT_THROW(
      {
        const auto report = run_replications(
            gen, baselines::make_aloha_window_factory(4.0), 8, 1, nullptr,
            {}, nullptr, 4);
        (void)report;
      },
      std::runtime_error);
}

}  // namespace
}  // namespace crmd::analysis
