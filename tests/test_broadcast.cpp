// Tests for the broadcast-stage schedule: Lemma 6's active-step count and
// the step -> (phase, subphase, offset) geometry.

#include <gtest/gtest.h>

#include "core/aligned/broadcast.hpp"
#include "core/params.hpp"
#include "util/math.hpp"

namespace crmd::core::aligned {
namespace {

Params test_params(int lambda = 2) {
  Params p;
  p.lambda = lambda;
  return p;
}

TEST(BroadcastSchedule, Lemma6TotalSteps) {
  // Lemma 6: estimation λℓ² plus broadcast gives 2λ(ℓ² + n − 1) in total,
  // i.e. broadcast alone is λ(2n − 2 + ℓ²), for estimates n >= 2.
  for (const int lambda : {1, 2, 3}) {
    const Params p = test_params(lambda);
    for (const int level : {2, 5, 10, 16}) {
      for (const std::int64_t n : {2LL, 8LL, 128LL, 4096LL}) {
        const BroadcastSchedule sched(p, level, n);
        EXPECT_EQ(sched.total_steps(), lambda * (2 * n - 2 + level * level));
        EXPECT_EQ(p.total_steps(level, n),
                  2LL * lambda * (level * level + n - 1))
            << "λ=" << lambda << " ℓ=" << level << " n=" << n;
      }
    }
  }
}

TEST(BroadcastSchedule, EmptyEstimateHasNoSteps) {
  const Params p = test_params();
  const BroadcastSchedule sched(p, 6, 0);
  EXPECT_EQ(sched.total_steps(), 0);
  EXPECT_EQ(sched.phases(), 0u);
}

TEST(BroadcastSchedule, EstimateOneIsEqualPhasesOnly) {
  const Params p = test_params();
  const int level = 6;
  const BroadcastSchedule sched(p, level, 1);
  EXPECT_EQ(sched.total_steps(), p.lambda * level * level);
  EXPECT_EQ(sched.phases(), static_cast<std::size_t>(level));
  for (std::size_t i = 0; i < sched.phases(); ++i) {
    EXPECT_EQ(sched.phase_subphase_len(i), level);
  }
}

TEST(BroadcastSchedule, PhaseLayoutDecaysThenEqualizes) {
  const Params p = test_params();
  const int level = 4;
  const std::int64_t n = 16;
  const BroadcastSchedule sched(p, level, n);
  // Decay phases: 16, 8, 4, 2; then 4 equal phases of 4.
  ASSERT_EQ(sched.phases(), 8u);
  EXPECT_EQ(sched.phase_subphase_len(0), 16);
  EXPECT_EQ(sched.phase_subphase_len(1), 8);
  EXPECT_EQ(sched.phase_subphase_len(2), 4);
  EXPECT_EQ(sched.phase_subphase_len(3), 2);
  for (std::size_t i = 4; i < 8; ++i) {
    EXPECT_EQ(sched.phase_subphase_len(i), level);
  }
}

TEST(BroadcastSchedule, PositionWalksSubphasesMonotonically) {
  const Params p = test_params(3);
  const BroadcastSchedule sched(p, 3, 8);
  std::int64_t last_subphase = -1;
  std::int64_t steps_in_subphase = 0;
  for (std::int64_t step = 0; step < sched.total_steps(); ++step) {
    const auto pos = sched.position(step);
    ASSERT_GE(pos.subphase_len, 2);
    ASSERT_GE(pos.offset, 0);
    ASSERT_LT(pos.offset, pos.subphase_len);
    if (pos.subphase_id != last_subphase) {
      // A new subphase must start at offset 0 and follow the previous one.
      EXPECT_EQ(pos.offset, 0);
      EXPECT_EQ(pos.subphase_id, last_subphase + 1);
      if (last_subphase >= 0) {
        EXPECT_GT(steps_in_subphase, 0);
      }
      last_subphase = pos.subphase_id;
      steps_in_subphase = 0;
    } else {
      // Offsets advance by one inside a subphase.
      EXPECT_EQ(pos.offset, steps_in_subphase);
    }
    ++steps_in_subphase;
  }
}

TEST(BroadcastSchedule, SubphaseCountIsLambdaPerPhase) {
  const Params p = test_params(2);
  const BroadcastSchedule sched(p, 5, 4);
  // Phases: 4, 2, then five equal phases of 5 -> 7 phases, λ=2 subphases
  // each -> subphase ids 0..13.
  const auto last = sched.position(sched.total_steps() - 1);
  EXPECT_EQ(last.subphase_id, 13);
}

TEST(BroadcastSchedule, CoversEveryStepExactlyOnce) {
  const Params p = test_params(2);
  const BroadcastSchedule sched(p, 4, 32);
  std::int64_t covered = 0;
  std::int64_t expected_id = 0;
  for (std::int64_t step = 0; step < sched.total_steps();) {
    const auto pos = sched.position(step);
    EXPECT_EQ(pos.subphase_id, expected_id);
    EXPECT_EQ(pos.offset, 0);
    covered += pos.subphase_len;
    step += pos.subphase_len;
    ++expected_id;
  }
  EXPECT_EQ(covered, sched.total_steps());
}

}  // namespace
}  // namespace crmd::core::aligned
