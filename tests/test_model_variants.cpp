// Tests for the model-variant features: the no-collision-detection channel
// mode and the Poisson sustained-load generator.

#include <gtest/gtest.h>

#include "core/aligned/protocol.hpp"
#include "sim/simulator.hpp"
#include "test_helpers.hpp"
#include "workload/generators.hpp"

namespace crmd {
namespace {

// A listener protocol that records the outcomes it perceives.
class ListenerProtocol final : public sim::Protocol {
 public:
  explicit ListenerProtocol(std::shared_ptr<std::vector<sim::SlotOutcome>> log)
      : log_(std::move(log)) {}
  void on_activate(const sim::JobInfo&) override {}
  sim::SlotAction on_slot(const sim::SlotView&) override { return {}; }
  void on_feedback(const sim::SlotView&,
                   const sim::SlotFeedback& fb) override {
    log_->push_back(fb.outcome);
  }
  bool done() const override { return false; }

 private:
  std::shared_ptr<std::vector<sim::SlotOutcome>> log_;
};

TEST(NoCollisionDetection, ListenersPerceiveNoiseAsSilence) {
  auto log = std::make_shared<std::vector<sim::SlotOutcome>>();
  workload::Instance instance;
  instance.jobs = {{0, 4}, {0, 4}, {0, 4}};  // two colliders + one listener
  const sim::ProtocolFactory factory = [&](const sim::JobInfo& info,
                                           util::Rng) {
    if (info.id == 2) {
      return std::unique_ptr<sim::Protocol>(
          std::make_unique<ListenerProtocol>(log));
    }
    return std::unique_ptr<sim::Protocol>(
        std::make_unique<test::ScriptProtocol>(std::vector<Slot>{1}));
  };

  sim::SimConfig no_cd;
  no_cd.collision_detection = false;
  const auto result = sim::run(instance, factory, no_cd);
  // The collision happened on the channel (metrics see it)...
  EXPECT_EQ(result.metrics.noise_slots, 1);
  // ...but the listener perceived silence.
  ASSERT_GE(log->size(), 2u);
  EXPECT_EQ((*log)[1], sim::SlotOutcome::kSilence);

  log->clear();
  sim::SimConfig with_cd;  // default: CD on
  const auto result2 = sim::run(instance, factory, with_cd);
  EXPECT_EQ(result2.metrics.noise_slots, 1);
  EXPECT_EQ((*log)[1], sim::SlotOutcome::kNoise);
}

TEST(NoCollisionDetection, TransmittersStillLearnFailure) {
  // Both jobs collide at offset 1; each transmitted, so each must see the
  // noise (ACK-style failure) even without CD — otherwise BEB-style
  // protocols could never back off.
  workload::Instance instance;
  instance.jobs = {{0, 64}, {0, 64}};
  sim::SimConfig no_cd;
  no_cd.collision_detection = false;
  // ScriptProtocol succeeds only when it transmits alone; if a transmitter
  // wrongly perceived silence it would never record done and the test
  // would show both failing despite disjoint retries. Use per-job scripts
  // with a shared first attempt and disjoint retries.
  const auto result = sim::run(
      instance, test::per_job_script_factory({{1, 5}, {1, 9}}), no_cd);
  EXPECT_EQ(result.successes(), 2);
}

TEST(NoCollisionDetection, AlignedUnaffected) {
  core::Params p;
  p.lambda = 2;
  p.tau = 4;
  p.min_class = 11;
  sim::SimConfig no_cd;
  no_cd.seed = 3;
  no_cd.collision_detection = false;
  const auto result =
      sim::run(workload::gen_batch(12, 1 << 11, 0),
               core::aligned::make_aligned_factory(p), no_cd);
  EXPECT_EQ(result.successes(), 12)
      << "ALIGNED's bookkeeping counts successes only";
}

TEST(GenPoisson, CountsScaleWithRate) {
  util::Rng rng(42);
  const auto sparse = workload::gen_poisson(0.01, 256, 1 << 14, rng);
  const auto dense = workload::gen_poisson(0.2, 256, 1 << 14, rng);
  // Expected ~161 vs ~3225.
  EXPECT_GT(sparse.size(), 80u);
  EXPECT_LT(sparse.size(), 320u);
  EXPECT_GT(dense.size(), 2500u);
  EXPECT_LT(dense.size(), 4000u);
}

TEST(GenPoisson, JobsRespectWindowAndHorizon) {
  util::Rng rng(7);
  const auto inst = workload::gen_poisson(0.05, 512, 1 << 13, rng);
  EXPECT_TRUE(inst.valid());
  for (const auto& j : inst.jobs) {
    EXPECT_EQ(j.window(), 512);
    EXPECT_GE(j.release, 0);
    EXPECT_LE(j.deadline, 1 << 13);
  }
}

TEST(GenPoisson, ZeroRateIsEmpty) {
  util::Rng rng(9);
  EXPECT_TRUE(workload::gen_poisson(0.0, 64, 1024, rng).empty());
}

TEST(GenPoisson, LargeMeanDoesNotHang) {
  // Exercises the std::poisson_distribution branch (Knuth would underflow).
  util::Rng rng(11);
  const auto inst = workload::gen_poisson(0.5, 64, 1 << 14, rng);
  EXPECT_GT(inst.size(), 6000u);
  EXPECT_LT(inst.size(), 10000u);
}

}  // namespace
}  // namespace crmd
