# Empty dependencies file for bench_batch_makespan.
# This may be replaced when dependencies are built.
