file(REMOVE_RECURSE
  "CMakeFiles/bench_batch_makespan.dir/bench_batch_makespan.cpp.o"
  "CMakeFiles/bench_batch_makespan.dir/bench_batch_makespan.cpp.o.d"
  "bench_batch_makespan"
  "bench_batch_makespan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_batch_makespan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
