# Empty compiler generated dependencies file for bench_uniform_starvation.
# This may be replaced when dependencies are built.
