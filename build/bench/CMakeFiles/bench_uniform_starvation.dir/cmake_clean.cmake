file(REMOVE_RECURSE
  "CMakeFiles/bench_uniform_starvation.dir/bench_uniform_starvation.cpp.o"
  "CMakeFiles/bench_uniform_starvation.dir/bench_uniform_starvation.cpp.o.d"
  "bench_uniform_starvation"
  "bench_uniform_starvation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniform_starvation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
