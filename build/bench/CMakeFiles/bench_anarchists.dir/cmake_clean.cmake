file(REMOVE_RECURSE
  "CMakeFiles/bench_anarchists.dir/bench_anarchists.cpp.o"
  "CMakeFiles/bench_anarchists.dir/bench_anarchists.cpp.o.d"
  "bench_anarchists"
  "bench_anarchists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_anarchists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
