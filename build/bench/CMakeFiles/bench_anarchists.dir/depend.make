# Empty dependencies file for bench_anarchists.
# This may be replaced when dependencies are built.
