file(REMOVE_RECURSE
  "CMakeFiles/bench_estimation_accuracy.dir/bench_estimation_accuracy.cpp.o"
  "CMakeFiles/bench_estimation_accuracy.dir/bench_estimation_accuracy.cpp.o.d"
  "bench_estimation_accuracy"
  "bench_estimation_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_estimation_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
