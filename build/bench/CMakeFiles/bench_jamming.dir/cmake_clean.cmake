file(REMOVE_RECURSE
  "CMakeFiles/bench_jamming.dir/bench_jamming.cpp.o"
  "CMakeFiles/bench_jamming.dir/bench_jamming.cpp.o.d"
  "bench_jamming"
  "bench_jamming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jamming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
