# Empty dependencies file for bench_jamming.
# This may be replaced when dependencies are built.
