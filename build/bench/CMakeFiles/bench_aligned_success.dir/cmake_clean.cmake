file(REMOVE_RECURSE
  "CMakeFiles/bench_aligned_success.dir/bench_aligned_success.cpp.o"
  "CMakeFiles/bench_aligned_success.dir/bench_aligned_success.cpp.o.d"
  "bench_aligned_success"
  "bench_aligned_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_aligned_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
