# Empty dependencies file for bench_aligned_success.
# This may be replaced when dependencies are built.
