file(REMOVE_RECURSE
  "CMakeFiles/bench_slingshot_contention.dir/bench_slingshot_contention.cpp.o"
  "CMakeFiles/bench_slingshot_contention.dir/bench_slingshot_contention.cpp.o.d"
  "bench_slingshot_contention"
  "bench_slingshot_contention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_slingshot_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
