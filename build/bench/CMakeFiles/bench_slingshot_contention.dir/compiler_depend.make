# Empty compiler generated dependencies file for bench_slingshot_contention.
# This may be replaced when dependencies are built.
