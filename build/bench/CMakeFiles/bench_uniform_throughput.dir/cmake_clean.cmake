file(REMOVE_RECURSE
  "CMakeFiles/bench_uniform_throughput.dir/bench_uniform_throughput.cpp.o"
  "CMakeFiles/bench_uniform_throughput.dir/bench_uniform_throughput.cpp.o.d"
  "bench_uniform_throughput"
  "bench_uniform_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_uniform_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
