# Empty compiler generated dependencies file for bench_model_assumptions.
# This may be replaced when dependencies are built.
