file(REMOVE_RECURSE
  "CMakeFiles/bench_model_assumptions.dir/bench_model_assumptions.cpp.o"
  "CMakeFiles/bench_model_assumptions.dir/bench_model_assumptions.cpp.o.d"
  "bench_model_assumptions"
  "bench_model_assumptions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_assumptions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
