# Empty compiler generated dependencies file for bench_contention_bounds.
# This may be replaced when dependencies are built.
