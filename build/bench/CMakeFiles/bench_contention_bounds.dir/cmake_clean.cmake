file(REMOVE_RECURSE
  "CMakeFiles/bench_contention_bounds.dir/bench_contention_bounds.cpp.o"
  "CMakeFiles/bench_contention_bounds.dir/bench_contention_bounds.cpp.o.d"
  "bench_contention_bounds"
  "bench_contention_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_contention_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
