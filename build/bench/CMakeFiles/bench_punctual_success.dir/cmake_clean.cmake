file(REMOVE_RECURSE
  "CMakeFiles/bench_punctual_success.dir/bench_punctual_success.cpp.o"
  "CMakeFiles/bench_punctual_success.dir/bench_punctual_success.cpp.o.d"
  "bench_punctual_success"
  "bench_punctual_success.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_punctual_success.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
