# Empty compiler generated dependencies file for bench_punctual_success.
# This may be replaced when dependencies are built.
