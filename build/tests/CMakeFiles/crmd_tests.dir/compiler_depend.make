# Empty compiler generated dependencies file for crmd_tests.
# This may be replaced when dependencies are built.
