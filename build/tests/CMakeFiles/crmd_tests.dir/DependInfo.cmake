
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_aligned.cpp" "tests/CMakeFiles/crmd_tests.dir/test_aligned.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_aligned.cpp.o.d"
  "/root/repo/tests/test_aligned_edges.cpp" "tests/CMakeFiles/crmd_tests.dir/test_aligned_edges.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_aligned_edges.cpp.o.d"
  "/root/repo/tests/test_aligned_invariants.cpp" "tests/CMakeFiles/crmd_tests.dir/test_aligned_invariants.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_aligned_invariants.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/crmd_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_bounds.cpp" "tests/CMakeFiles/crmd_tests.dir/test_bounds.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_bounds.cpp.o.d"
  "/root/repo/tests/test_broadcast.cpp" "tests/CMakeFiles/crmd_tests.dir/test_broadcast.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_broadcast.cpp.o.d"
  "/root/repo/tests/test_channel.cpp" "tests/CMakeFiles/crmd_tests.dir/test_channel.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_channel.cpp.o.d"
  "/root/repo/tests/test_energy.cpp" "tests/CMakeFiles/crmd_tests.dir/test_energy.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_energy.cpp.o.d"
  "/root/repo/tests/test_estimation.cpp" "tests/CMakeFiles/crmd_tests.dir/test_estimation.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_estimation.cpp.o.d"
  "/root/repo/tests/test_feasibility.cpp" "tests/CMakeFiles/crmd_tests.dir/test_feasibility.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_feasibility.cpp.o.d"
  "/root/repo/tests/test_generators_property.cpp" "tests/CMakeFiles/crmd_tests.dir/test_generators_property.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_generators_property.cpp.o.d"
  "/root/repo/tests/test_lemma11_sums.cpp" "tests/CMakeFiles/crmd_tests.dir/test_lemma11_sums.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_lemma11_sums.cpp.o.d"
  "/root/repo/tests/test_metrics.cpp" "tests/CMakeFiles/crmd_tests.dir/test_metrics.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_metrics.cpp.o.d"
  "/root/repo/tests/test_model_variants.cpp" "tests/CMakeFiles/crmd_tests.dir/test_model_variants.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_model_variants.cpp.o.d"
  "/root/repo/tests/test_punctual.cpp" "tests/CMakeFiles/crmd_tests.dir/test_punctual.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_punctual.cpp.o.d"
  "/root/repo/tests/test_punctual_edges.cpp" "tests/CMakeFiles/crmd_tests.dir/test_punctual_edges.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_punctual_edges.cpp.o.d"
  "/root/repo/tests/test_punctual_invariants.cpp" "tests/CMakeFiles/crmd_tests.dir/test_punctual_invariants.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_punctual_invariants.cpp.o.d"
  "/root/repo/tests/test_punctual_stages.cpp" "tests/CMakeFiles/crmd_tests.dir/test_punctual_stages.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_punctual_stages.cpp.o.d"
  "/root/repo/tests/test_punctual_units.cpp" "tests/CMakeFiles/crmd_tests.dir/test_punctual_units.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_punctual_units.cpp.o.d"
  "/root/repo/tests/test_registry.cpp" "tests/CMakeFiles/crmd_tests.dir/test_registry.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_registry.cpp.o.d"
  "/root/repo/tests/test_runner.cpp" "tests/CMakeFiles/crmd_tests.dir/test_runner.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_runner.cpp.o.d"
  "/root/repo/tests/test_scenarios.cpp" "tests/CMakeFiles/crmd_tests.dir/test_scenarios.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_scenarios.cpp.o.d"
  "/root/repo/tests/test_sim_contract.cpp" "tests/CMakeFiles/crmd_tests.dir/test_sim_contract.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_sim_contract.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/crmd_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/crmd_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_trace.cpp.o.d"
  "/root/repo/tests/test_tracker.cpp" "tests/CMakeFiles/crmd_tests.dir/test_tracker.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_tracker.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/crmd_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_util_more.cpp" "tests/CMakeFiles/crmd_tests.dir/test_util_more.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_util_more.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/crmd_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/crmd_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/crmd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
