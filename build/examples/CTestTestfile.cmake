# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[smoke_example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[smoke_example_quickstart]=] PROPERTIES  LABELS "smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;14;crmd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_example_industrial_sensors]=] "/root/repo/build/examples/industrial_sensors")
set_tests_properties([=[smoke_example_industrial_sensors]=] PROPERTIES  LABELS "smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;15;crmd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_example_qos_priorities]=] "/root/repo/build/examples/qos_priorities")
set_tests_properties([=[smoke_example_qos_priorities]=] PROPERTIES  LABELS "smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;16;crmd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_example_jamming_resilience]=] "/root/repo/build/examples/jamming_resilience")
set_tests_properties([=[smoke_example_jamming_resilience]=] PROPERTIES  LABELS "smoke" TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;8;add_test;/root/repo/examples/CMakeLists.txt;17;crmd_example;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_example_crmd_cli]=] "/root/repo/build/examples/crmd_cli" "--protocol=beb" "--workload=batch" "--n=4" "--window=1024" "--reps=1")
set_tests_properties([=[smoke_example_crmd_cli]=] PROPERTIES  LABELS "smoke" TIMEOUT "120" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
