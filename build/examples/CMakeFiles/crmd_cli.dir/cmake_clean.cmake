file(REMOVE_RECURSE
  "CMakeFiles/crmd_cli.dir/crmd_cli.cpp.o"
  "CMakeFiles/crmd_cli.dir/crmd_cli.cpp.o.d"
  "crmd_cli"
  "crmd_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crmd_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
