# Empty dependencies file for crmd_cli.
# This may be replaced when dependencies are built.
