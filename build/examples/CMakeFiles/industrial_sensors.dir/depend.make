# Empty dependencies file for industrial_sensors.
# This may be replaced when dependencies are built.
