file(REMOVE_RECURSE
  "CMakeFiles/industrial_sensors.dir/industrial_sensors.cpp.o"
  "CMakeFiles/industrial_sensors.dir/industrial_sensors.cpp.o.d"
  "industrial_sensors"
  "industrial_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/industrial_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
