file(REMOVE_RECURSE
  "CMakeFiles/qos_priorities.dir/qos_priorities.cpp.o"
  "CMakeFiles/qos_priorities.dir/qos_priorities.cpp.o.d"
  "qos_priorities"
  "qos_priorities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qos_priorities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
