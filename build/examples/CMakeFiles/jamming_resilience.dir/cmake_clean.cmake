file(REMOVE_RECURSE
  "CMakeFiles/jamming_resilience.dir/jamming_resilience.cpp.o"
  "CMakeFiles/jamming_resilience.dir/jamming_resilience.cpp.o.d"
  "jamming_resilience"
  "jamming_resilience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jamming_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
