file(REMOVE_RECURSE
  "libcrmd.a"
)
