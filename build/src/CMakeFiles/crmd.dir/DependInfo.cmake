
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/bounds.cpp" "src/CMakeFiles/crmd.dir/analysis/bounds.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/analysis/bounds.cpp.o.d"
  "/root/repo/src/analysis/outcomes.cpp" "src/CMakeFiles/crmd.dir/analysis/outcomes.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/analysis/outcomes.cpp.o.d"
  "/root/repo/src/analysis/runner.cpp" "src/CMakeFiles/crmd.dir/analysis/runner.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/analysis/runner.cpp.o.d"
  "/root/repo/src/baselines/aloha.cpp" "src/CMakeFiles/crmd.dir/baselines/aloha.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/baselines/aloha.cpp.o.d"
  "/root/repo/src/baselines/beb.cpp" "src/CMakeFiles/crmd.dir/baselines/beb.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/baselines/beb.cpp.o.d"
  "/root/repo/src/baselines/edf.cpp" "src/CMakeFiles/crmd.dir/baselines/edf.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/baselines/edf.cpp.o.d"
  "/root/repo/src/baselines/sawtooth.cpp" "src/CMakeFiles/crmd.dir/baselines/sawtooth.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/baselines/sawtooth.cpp.o.d"
  "/root/repo/src/core/aligned/broadcast.cpp" "src/CMakeFiles/crmd.dir/core/aligned/broadcast.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/aligned/broadcast.cpp.o.d"
  "/root/repo/src/core/aligned/estimation.cpp" "src/CMakeFiles/crmd.dir/core/aligned/estimation.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/aligned/estimation.cpp.o.d"
  "/root/repo/src/core/aligned/protocol.cpp" "src/CMakeFiles/crmd.dir/core/aligned/protocol.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/aligned/protocol.cpp.o.d"
  "/root/repo/src/core/aligned/tracker.cpp" "src/CMakeFiles/crmd.dir/core/aligned/tracker.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/aligned/tracker.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/crmd.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/params.cpp.o.d"
  "/root/repo/src/core/punctual/clock.cpp" "src/CMakeFiles/crmd.dir/core/punctual/clock.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/punctual/clock.cpp.o.d"
  "/root/repo/src/core/punctual/protocol.cpp" "src/CMakeFiles/crmd.dir/core/punctual/protocol.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/punctual/protocol.cpp.o.d"
  "/root/repo/src/core/punctual/round.cpp" "src/CMakeFiles/crmd.dir/core/punctual/round.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/punctual/round.cpp.o.d"
  "/root/repo/src/core/registry.cpp" "src/CMakeFiles/crmd.dir/core/registry.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/registry.cpp.o.d"
  "/root/repo/src/core/uniform.cpp" "src/CMakeFiles/crmd.dir/core/uniform.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/core/uniform.cpp.o.d"
  "/root/repo/src/sim/channel.cpp" "src/CMakeFiles/crmd.dir/sim/channel.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/channel.cpp.o.d"
  "/root/repo/src/sim/jammer.cpp" "src/CMakeFiles/crmd.dir/sim/jammer.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/jammer.cpp.o.d"
  "/root/repo/src/sim/message.cpp" "src/CMakeFiles/crmd.dir/sim/message.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/message.cpp.o.d"
  "/root/repo/src/sim/metrics.cpp" "src/CMakeFiles/crmd.dir/sim/metrics.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/metrics.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/crmd.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/crmd.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/sim/trace.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/crmd.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/math.cpp" "src/CMakeFiles/crmd.dir/util/math.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/util/math.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/crmd.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/crmd.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/crmd.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/util/table.cpp.o.d"
  "/root/repo/src/workload/feasibility.cpp" "src/CMakeFiles/crmd.dir/workload/feasibility.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/workload/feasibility.cpp.o.d"
  "/root/repo/src/workload/generators.cpp" "src/CMakeFiles/crmd.dir/workload/generators.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/workload/generators.cpp.o.d"
  "/root/repo/src/workload/instance.cpp" "src/CMakeFiles/crmd.dir/workload/instance.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/workload/instance.cpp.o.d"
  "/root/repo/src/workload/trim.cpp" "src/CMakeFiles/crmd.dir/workload/trim.cpp.o" "gcc" "src/CMakeFiles/crmd.dir/workload/trim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
