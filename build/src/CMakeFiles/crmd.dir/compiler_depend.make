# Empty compiler generated dependencies file for crmd.
# This may be replaced when dependencies are built.
